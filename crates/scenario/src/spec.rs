//! The typed scenario spec and its strict JSON (de)serialization.
//!
//! A spec is one experiment: a workload trajectory, a system/control
//! configuration, a controller, and optionally a list of *variants* —
//! named override sets run against the same base (ablation axes). Every
//! unknown key is an error: a typo'd field must never silently keep its
//! default.
//!
//! ```json
//! {
//!   "name": "fig13",
//!   "description": "IS under an abrupt jump of the optimum",
//!   "seed": 987654,
//!   "horizon_ms": 2000000.0,
//!   "cc": "certification",
//!   "system": {"terminals": 500},
//!   "control": {"sample_interval_ms": 2000.0, "warmup_ms": 0.0},
//!   "workload": {"k": {"step": {"at": 1000000.0, "before": 8, "after": 16}}},
//!   "controller": {"is": {"initial_bound": 50, "max_bound": 800}},
//!   "trajectories": true
//! }
//! ```

use alc_core::controller::{
    FixedBound, IncrementalSteps, IsParams, IyerRule, IyerRuleParams, LoadController,
    ParabolaApproximation, PaParams, TayRule, Unlimited,
};
use alc_tpsim::config::{CcKind, SystemConfig};
use alc_tpsim::engine::RunStats;
use alc_tpsim::workload::WorkloadConfig;
use serde::Value;

use crate::profile::Profile;
use crate::value_util::{normalize_arrival, normalize_dist, override_pairs};
use crate::SpecError;

/// One scenario: the declarative form the `scenario` binary runs.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario id — also the stem of every emitted CSV.
    pub name: String,
    /// One-line description (report title).
    pub description: String,
    /// Master seed of replication 0; later replications derive from it.
    pub seed: u64,
    /// Independent replications per variant (different derived seeds).
    pub replications: u32,
    /// Simulated horizon, ms.
    pub horizon_ms: f64,
    /// Concurrency-control protocol.
    pub cc: CcKind,
    /// Shallow overrides on [`SystemConfig`] (dist shorthands allowed;
    /// `seed` is set by the top-level field, not here).
    pub system: Vec<(String, Value)>,
    /// Shallow overrides on [`alc_tpsim::config::ControlConfig`].
    pub control: Vec<(String, Value)>,
    /// The time-varying workload.
    pub workload: WorkloadSpec,
    /// The load controller (or a static/baseline policy).
    pub controller: ControllerSpec,
    /// Record the analytic optimum trajectory `n_opt(t)`.
    pub record_optimum: bool,
    /// Write per-run trajectory CSVs.
    pub trajectories: bool,
    /// Header of the label column in the report table.
    pub label_header: String,
    /// Stat columns of the report table.
    pub columns: Vec<StatColumn>,
    /// Named override sets producing one run group each.
    pub variants: Vec<VariantSpec>,
    /// Path → value overrides applied under `--quick` (CI scale).
    pub quick: Vec<(String, Value)>,
}

/// One variant: a named set of overrides on the base spec.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantSpec {
    /// Variant label (row label, trajectory-file suffix).
    pub name: String,
    /// Path → value overrides applied for this variant.
    pub set: Vec<(String, Value)>,
    /// Additional path → value overrides applied under `--quick`, after
    /// the spec-level quick overrides.
    pub quick: Vec<(String, Value)>,
}

/// The workload section: one [`Profile`] per time-varying parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Items accessed per transaction, `k(t)`.
    pub k: Profile,
    /// Read-only fraction `q(t)`.
    pub query_frac: Profile,
    /// Updater write-access fraction `w(t)`.
    pub write_frac: Profile,
    /// Zipf access skew θ(t) (hot-spot drift).
    pub access_skew: Profile,
    /// Open-mode arrival-rate multiplier `a(t)` (surges, flash crowds).
    pub arrival_rate_factor: Profile,
    /// Closed-mode think-time multiplier `h(t)`.
    pub think_time_factor: Profile,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            k: Profile::Constant(8.0),
            query_frac: Profile::Constant(0.2),
            write_frac: Profile::Constant(0.25),
            access_skew: Profile::Constant(0.0),
            arrival_rate_factor: Profile::Constant(1.0),
            think_time_factor: Profile::Constant(1.0),
        }
    }
}

impl WorkloadSpec {
    /// Lowers every profile into the engine's [`WorkloadConfig`].
    pub fn lower(&self, base_dir: &std::path::Path) -> Result<WorkloadConfig, SpecError> {
        Ok(WorkloadConfig {
            k: self.k.lower(base_dir)?,
            query_frac: self.query_frac.lower(base_dir)?,
            write_frac: self.write_frac.lower(base_dir)?,
            access_skew: self.access_skew.lower(base_dir)?,
            arrival_rate_factor: self.arrival_rate_factor.lower(base_dir)?,
            think_time_factor: self.think_time_factor.lower(base_dir)?,
        })
    }
}

/// The controller section: the §4 feedback controllers, the self-tuning
/// baselines and the static rules of thumb, each with full parameter
/// control (omitted parameters keep their crate defaults).
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerSpec {
    /// No controller: the gate stays at `control.initial_bound`.
    None,
    /// No admission limit at all (`Unlimited` baseline).
    Unlimited,
    /// A fixed static bound.
    Fixed {
        /// The bound.
        bound: u32,
    },
    /// A fixed bound pinned to the *analytic* optimum of the compiled
    /// workload at `at_ms` — the "perfectly informed DBA" baseline.
    FixedAnalyticOptimum {
        /// Workload time the optimum is computed at, ms.
        at_ms: f64,
        /// Scan limit for the optimum search.
        n_max: u32,
    },
    /// Incremental Steps (§4.1).
    Is(IsParams),
    /// Parabola Approximation (§4.2).
    Pa(PaParams),
    /// Iyer's conflict-rate rule as a feedback baseline.
    Iyer(IyerRuleParams),
    /// Tay's static `k²n/D < 1.5` rule of thumb.
    Tay {
        /// The (assumed) locks per transaction.
        k: u32,
        /// Static lower bound.
        min_bound: u32,
        /// Static upper bound.
        max_bound: u32,
    },
}

impl ControllerSpec {
    /// Instantiates the controller against the compiled system/workload
    /// (`None` means "run with the static initial bound").
    pub fn build(
        &self,
        sys: &SystemConfig,
        workload: &WorkloadConfig,
    ) -> Option<Box<dyn LoadController>> {
        match self {
            ControllerSpec::None => None,
            ControllerSpec::Unlimited => Some(Box::new(Unlimited)),
            ControllerSpec::Fixed { bound } => Some(Box::new(FixedBound::new(*bound))),
            ControllerSpec::FixedAnalyticOptimum { at_ms, n_max } => Some(Box::new(
                FixedBound::new(workload.analytic_optimum(*at_ms, sys, *n_max)),
            )),
            ControllerSpec::Is(p) => Some(Box::new(IncrementalSteps::new(*p))),
            ControllerSpec::Pa(p) => Some(Box::new(ParabolaApproximation::new(*p))),
            ControllerSpec::Iyer(p) => Some(Box::new(IyerRule::new(*p))),
            ControllerSpec::Tay {
                k,
                min_bound,
                max_bound,
            } => Some(Box::new(TayRule::new(
                *k,
                sys.db_size,
                *min_bound,
                *max_bound,
            ))),
        }
    }
}

/// A raw-statistics column of the report table. Integer counters format
/// via `to_string`, continuous values via the shared `num` table format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatColumn {
    /// Commits per second.
    ThroughputPerS,
    /// Aborted / finished runs.
    AbortRatio,
    /// Mean response time, ms.
    MeanResponseMs,
    /// Time-averaged observed MPL.
    MeanMpl,
    /// Time-averaged gate bound.
    MeanBound,
    /// Committed transactions.
    Commits,
    /// Aborted runs.
    Aborts,
    /// Displacement victims.
    Displaced,
    /// Open-mode lost arrivals.
    Lost,
    /// Data conflicts per commit.
    ConflictsPerCommit,
    /// Mean CPU utilization.
    CpuUtilization,
}

impl StatColumn {
    /// Every column, for `scenario --help` listings.
    pub const ALL: [StatColumn; 11] = [
        StatColumn::ThroughputPerS,
        StatColumn::AbortRatio,
        StatColumn::MeanResponseMs,
        StatColumn::MeanMpl,
        StatColumn::MeanBound,
        StatColumn::Commits,
        StatColumn::Aborts,
        StatColumn::Displaced,
        StatColumn::Lost,
        StatColumn::ConflictsPerCommit,
        StatColumn::CpuUtilization,
    ];

    /// The column's spec/CSV name.
    pub fn name(&self) -> &'static str {
        match self {
            StatColumn::ThroughputPerS => "throughput_per_s",
            StatColumn::AbortRatio => "abort_ratio",
            StatColumn::MeanResponseMs => "mean_response_ms",
            StatColumn::MeanMpl => "mean_mpl",
            StatColumn::MeanBound => "mean_bound",
            StatColumn::Commits => "commits",
            StatColumn::Aborts => "aborts",
            StatColumn::Displaced => "displaced",
            StatColumn::Lost => "lost",
            StatColumn::ConflictsPerCommit => "conflicts_per_commit",
            StatColumn::CpuUtilization => "cpu_utilization",
        }
    }

    /// Parses a spec/CSV name.
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        StatColumn::ALL
            .into_iter()
            .find(|c| c.name() == s)
            .ok_or_else(|| SpecError::new(format!("unknown stat column `{s}`")))
    }

    /// Formats the column's value from run statistics.
    pub fn format(&self, stats: &RunStats) -> String {
        use alc_bench::table::num;
        match self {
            StatColumn::ThroughputPerS => num(stats.throughput_per_sec),
            StatColumn::AbortRatio => num(stats.abort_ratio),
            StatColumn::MeanResponseMs => num(stats.mean_response_ms),
            StatColumn::MeanMpl => num(stats.mean_mpl),
            StatColumn::MeanBound => num(stats.mean_bound),
            StatColumn::Commits => stats.commits.to_string(),
            StatColumn::Aborts => stats.aborts.to_string(),
            StatColumn::Displaced => stats.displaced.to_string(),
            StatColumn::Lost => stats.lost.to_string(),
            StatColumn::ConflictsPerCommit => num(stats.conflicts_per_commit),
            StatColumn::CpuUtilization => num(stats.cpu_utilization),
        }
    }
}

/// Default report columns.
fn default_columns() -> Vec<StatColumn> {
    vec![
        StatColumn::ThroughputPerS,
        StatColumn::AbortRatio,
        StatColumn::MeanResponseMs,
        StatColumn::MeanMpl,
        StatColumn::MeanBound,
    ]
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Parses a u32 field, rejecting non-integers and values that would
/// truncate (a silent `as u32` wrap could turn a typo into bound 0).
fn u32_from(v: &Value, what: &str) -> Result<u32, SpecError> {
    v.as_u64()
        .filter(|&x| x <= u64::from(u32::MAX))
        .map(|x| x as u32)
        .ok_or_else(|| SpecError::new(format!("`{what}` must be an integer ≤ u32::MAX")))
}

/// Parses a CC protocol: canonical variant names plus the CLI aliases.
fn cc_from_value(v: &Value) -> Result<CcKind, SpecError> {
    if let Value::Str(s) = v {
        let alias = match s.as_str() {
            "certification" | "cert" | "occ" => Some(CcKind::Certification),
            "2pl" | "two-phase-locking" => Some(CcKind::TwoPhaseLocking),
            "timestamp-ordering" | "to" => Some(CcKind::TimestampOrdering),
            "wound-wait" => Some(CcKind::WoundWait),
            "wait-die" => Some(CcKind::WaitDie),
            "mvto" | "multiversion" => Some(CcKind::Multiversion),
            _ => None,
        };
        if let Some(cc) = alias {
            return Ok(cc);
        }
    }
    <CcKind as serde::Deserialize>::from_value(v)
        .map_err(|e| SpecError::new(format!("invalid `cc`: {e}")))
}

fn controller_from_value(v: &Value) -> Result<ControllerSpec, SpecError> {
    if let Value::Str(s) = v {
        return match s.as_str() {
            "none" => Ok(ControllerSpec::None),
            "unlimited" => Ok(ControllerSpec::Unlimited),
            other => Err(SpecError::new(format!(
                "unknown controller `{other}` (want none/unlimited or an object)"
            ))),
        };
    }
    let Some([(tag, payload)]) = v.as_map() else {
        return Err(SpecError::new(
            "controller must be a string or a single-key object",
        ));
    };
    let params = |what: &str| -> Result<Vec<(String, Value)>, SpecError> {
        override_pairs(payload, what)
    };
    Ok(match tag.as_str() {
        "fixed" => {
            let bound = payload
                .get("bound")
                .ok_or_else(|| SpecError::new("`fixed` controller needs `bound`"))?;
            for (key, _) in payload.as_map().unwrap_or(&[]) {
                if key != "bound" {
                    return Err(SpecError::new(format!("unknown `fixed` field `{key}`")));
                }
            }
            ControllerSpec::Fixed {
                bound: u32_from(bound, "fixed.bound")?,
            }
        }
        "fixed_analytic_optimum" => {
            // Present-but-mistyped optional fields must error, never
            // silently fall back to the default.
            let at_ms = match payload.get("at_ms") {
                None => 0.0,
                Some(v) => v.as_f64().ok_or_else(|| {
                    SpecError::new("`fixed_analytic_optimum.at_ms` must be numeric")
                })?,
            };
            let n_max = payload
                .get("n_max")
                .ok_or_else(|| SpecError::new("`fixed_analytic_optimum` needs `n_max`"))?;
            for (k, _) in payload.as_map().unwrap_or(&[]) {
                if k != "at_ms" && k != "n_max" {
                    return Err(SpecError::new(format!(
                        "unknown `fixed_analytic_optimum` field `{k}`"
                    )));
                }
            }
            ControllerSpec::FixedAnalyticOptimum {
                at_ms,
                n_max: u32_from(n_max, "fixed_analytic_optimum.n_max")?,
            }
        }
        "is" => ControllerSpec::Is(crate::value_util::from_overrides(
            &params("IS controller")?,
            "IS controller",
        )?),
        "pa" => ControllerSpec::Pa(crate::value_util::from_overrides(
            &params("PA controller")?,
            "PA controller",
        )?),
        "iyer" => ControllerSpec::Iyer(crate::value_util::from_overrides(
            &params("Iyer controller")?,
            "Iyer controller",
        )?),
        "tay" => {
            let k = payload
                .get("k")
                .ok_or_else(|| SpecError::new("`tay` controller needs `k`"))?;
            let min_bound = match payload.get("min_bound") {
                None => 1,
                Some(v) => u32_from(v, "tay.min_bound")?,
            };
            let max_bound = payload
                .get("max_bound")
                .ok_or_else(|| SpecError::new("`tay` controller needs `max_bound`"))?;
            for (key, _) in payload.as_map().unwrap_or(&[]) {
                if !matches!(key.as_str(), "k" | "min_bound" | "max_bound") {
                    return Err(SpecError::new(format!("unknown `tay` field `{key}`")));
                }
            }
            ControllerSpec::Tay {
                k: u32_from(k, "tay.k")?,
                min_bound,
                max_bound: u32_from(max_bound, "tay.max_bound")?,
            }
        }
        other => {
            return Err(SpecError::new(format!("unknown controller kind `{other}`")));
        }
    })
}

fn workload_from_value(v: &Value) -> Result<WorkloadSpec, SpecError> {
    let entries = v
        .as_map()
        .ok_or_else(|| SpecError::new("`workload` must be an object"))?;
    let mut w = WorkloadSpec::default();
    for (k, pv) in entries {
        let p = <Profile as serde::Deserialize>::from_value(pv)
            .map_err(|e| SpecError::new(format!("workload `{k}`: {e}")))?;
        match k.as_str() {
            "k" => w.k = p,
            "query_frac" => w.query_frac = p,
            "write_frac" => w.write_frac = p,
            "access_skew" => w.access_skew = p,
            "arrival_rate_factor" => w.arrival_rate_factor = p,
            "think_time_factor" => w.think_time_factor = p,
            other => {
                return Err(SpecError::new(format!("unknown workload field `{other}`")));
            }
        }
    }
    Ok(w)
}

fn variant_from_value(v: &Value) -> Result<VariantSpec, SpecError> {
    let entries = v
        .as_map()
        .ok_or_else(|| SpecError::new("variant must be an object"))?;
    let mut name = None;
    let mut set = Vec::new();
    let mut quick = Vec::new();
    for (k, val) in entries {
        match k.as_str() {
            "name" => match val {
                Value::Str(s) => name = Some(s.clone()),
                _ => return Err(SpecError::new("variant `name` must be a string")),
            },
            "set" => set = override_pairs(val, "variant set")?,
            "quick" => quick = override_pairs(val, "variant quick")?,
            other => {
                return Err(SpecError::new(format!("unknown variant field `{other}`")));
            }
        }
    }
    Ok(VariantSpec {
        name: name.ok_or_else(|| SpecError::new("variant needs a `name`"))?,
        set,
        quick,
    })
}

/// Normalizes the `system` override map: dist-valued fields accept the
/// shorthands, `arrival` accepts its shorthands, and `seed` is rejected
/// (the top-level `seed` field owns it).
fn system_overrides_from_value(v: &Value) -> Result<Vec<(String, Value)>, SpecError> {
    const DIST_FIELDS: [&str; 5] = [
        "cpu_phase",
        "disk_access",
        "disk_init_commit",
        "think",
        "restart_delay",
    ];
    let mut out = Vec::new();
    for (k, val) in override_pairs(v, "system")? {
        let norm = if DIST_FIELDS.contains(&k.as_str()) {
            normalize_dist(&val).map_err(|e| SpecError::new(format!("system `{k}`: {e}")))?
        } else if k == "arrival" {
            normalize_arrival(&val)?
        } else if k == "seed" {
            return Err(SpecError::new(
                "set the top-level `seed` field, not `system.seed`",
            ));
        } else {
            val
        };
        out.push((k, norm));
    }
    Ok(out)
}

impl ScenarioSpec {
    /// Strictly parses a spec from its JSON tree. Unknown keys anywhere
    /// are errors.
    pub fn from_value(v: &Value) -> Result<Self, SpecError> {
        let entries = v
            .as_map()
            .ok_or_else(|| SpecError::new("scenario spec must be a JSON object"))?;
        let mut name = None;
        let mut description = String::new();
        let mut seed = SystemConfig::default().seed;
        let mut replications = 1u32;
        let mut horizon_ms = None;
        let mut cc = CcKind::Certification;
        let mut system = Vec::new();
        let mut control = Vec::new();
        let mut workload = WorkloadSpec::default();
        let mut controller = ControllerSpec::None;
        let mut record_optimum = false;
        let mut trajectories = false;
        let mut label_header = "variant".to_string();
        let mut columns = default_columns();
        let mut variants = Vec::new();
        let mut quick = Vec::new();

        for (k, val) in entries {
            match k.as_str() {
                "name" => match val {
                    Value::Str(s) => name = Some(s.clone()),
                    _ => return Err(SpecError::new("`name` must be a string")),
                },
                "description" => match val {
                    Value::Str(s) => description = s.clone(),
                    _ => return Err(SpecError::new("`description` must be a string")),
                },
                "seed" => {
                    seed = val
                        .as_u64()
                        .ok_or_else(|| SpecError::new("`seed` must be a u64"))?;
                }
                "replications" => {
                    replications = u32_from(val, "replications")?;
                    if replications == 0 {
                        return Err(SpecError::new("`replications` must be ≥ 1"));
                    }
                }
                "horizon_ms" => {
                    horizon_ms = Some(
                        val.as_f64()
                            .filter(|&h| h > 0.0)
                            .ok_or_else(|| SpecError::new("`horizon_ms` must be positive"))?,
                    );
                }
                "cc" => cc = cc_from_value(val)?,
                "system" => system = system_overrides_from_value(val)?,
                "control" => control = override_pairs(val, "control")?,
                "workload" => workload = workload_from_value(val)?,
                "controller" => controller = controller_from_value(val)?,
                "record_optimum" => match val {
                    Value::Bool(b) => record_optimum = *b,
                    _ => return Err(SpecError::new("`record_optimum` must be a bool")),
                },
                "trajectories" => match val {
                    Value::Bool(b) => trajectories = *b,
                    _ => return Err(SpecError::new("`trajectories` must be a bool")),
                },
                "label_header" => match val {
                    Value::Str(s) => label_header = s.clone(),
                    _ => return Err(SpecError::new("`label_header` must be a string")),
                },
                "columns" => {
                    let seq = val
                        .as_seq()
                        .ok_or_else(|| SpecError::new("`columns` must be a list"))?;
                    columns = seq
                        .iter()
                        .map(|c| match c {
                            Value::Str(s) => StatColumn::parse(s),
                            _ => Err(SpecError::new("`columns` entries must be strings")),
                        })
                        .collect::<Result<_, _>>()?;
                }
                "variants" => {
                    let seq = val
                        .as_seq()
                        .ok_or_else(|| SpecError::new("`variants` must be a list"))?;
                    variants = seq
                        .iter()
                        .map(variant_from_value)
                        .collect::<Result<_, _>>()?;
                }
                "quick" => quick = override_pairs(val, "quick")?,
                other => {
                    return Err(SpecError::new(format!("unknown spec field `{other}`")));
                }
            }
        }
        let spec = ScenarioSpec {
            name: name.ok_or_else(|| SpecError::new("spec needs a `name`"))?,
            description,
            seed,
            replications,
            horizon_ms: horizon_ms
                .ok_or_else(|| SpecError::new("spec needs a positive `horizon_ms`"))?,
            cc,
            system,
            control,
            workload,
            controller,
            record_optimum,
            trajectories,
            label_header,
            columns,
            variants,
            quick,
        };
        if spec.name.is_empty()
            || !spec
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(SpecError::new(
                "`name` must be non-empty [A-Za-z0-9_-] (it names output files)",
            ));
        }
        let mut seen = std::collections::HashSet::new();
        for v in &spec.variants {
            if !seen.insert(v.name.as_str()) {
                return Err(SpecError::new(format!("duplicate variant `{}`", v.name)));
            }
            // Variant names land in trajectory file names, so they get
            // the same charset discipline as the spec name (plus `.`,
            // for labels like `iyer-0.75`).
            if v.name.is_empty()
                || !v
                    .name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
            {
                return Err(SpecError::new(format!(
                    "variant name `{}` must be non-empty [A-Za-z0-9._-] (it names output files)",
                    v.name
                )));
            }
        }
        // Eagerly dry-run the override merges so a typo'd system/control
        // key fails at parse time, not only at compile time.
        let _: SystemConfig = crate::value_util::from_overrides(&spec.system, "system")?;
        let _: alc_tpsim::config::ControlConfig =
            crate::value_util::from_overrides(&spec.control, "control")?;
        Ok(spec)
    }
}

impl serde::Serialize for ScenarioSpec {
    fn to_value(&self) -> Value {
        let pairs_value =
            |pairs: &[(String, Value)]| Value::Map(pairs.to_vec());
        let mut m: Vec<(String, Value)> = vec![
            ("name".into(), Value::Str(self.name.clone())),
            ("description".into(), Value::Str(self.description.clone())),
            ("seed".into(), Value::U64(self.seed)),
            ("replications".into(), Value::U64(u64::from(self.replications))),
            ("horizon_ms".into(), Value::Num(self.horizon_ms)),
            ("cc".into(), self.cc.to_value()),
            ("system".into(), pairs_value(&self.system)),
            ("control".into(), pairs_value(&self.control)),
            ("workload".into(), self.workload.to_value()),
            ("controller".into(), self.controller.to_value()),
            ("record_optimum".into(), Value::Bool(self.record_optimum)),
            ("trajectories".into(), Value::Bool(self.trajectories)),
            ("label_header".into(), Value::Str(self.label_header.clone())),
            (
                "columns".into(),
                Value::Seq(
                    self.columns
                        .iter()
                        .map(|c| Value::Str(c.name().to_string()))
                        .collect(),
                ),
            ),
        ];
        if !self.variants.is_empty() {
            m.push((
                "variants".into(),
                Value::Seq(self.variants.iter().map(|v| v.to_value()).collect()),
            ));
        }
        if !self.quick.is_empty() {
            m.push(("quick".into(), pairs_value(&self.quick)));
        }
        Value::Map(m)
    }
}

impl<'de> serde::Deserialize<'de> for ScenarioSpec {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        ScenarioSpec::from_value(value).map_err(|e| serde::Error::custom(e.to_string()))
    }
}

impl serde::Serialize for VariantSpec {
    fn to_value(&self) -> Value {
        let mut m = vec![("name".to_string(), Value::Str(self.name.clone()))];
        if !self.set.is_empty() {
            m.push(("set".into(), Value::Map(self.set.clone())));
        }
        if !self.quick.is_empty() {
            m.push(("quick".into(), Value::Map(self.quick.clone())));
        }
        Value::Map(m)
    }
}

impl serde::Serialize for WorkloadSpec {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("k".into(), self.k.to_value()),
            ("query_frac".into(), self.query_frac.to_value()),
            ("write_frac".into(), self.write_frac.to_value()),
            ("access_skew".into(), self.access_skew.to_value()),
            (
                "arrival_rate_factor".into(),
                self.arrival_rate_factor.to_value(),
            ),
            (
                "think_time_factor".into(),
                self.think_time_factor.to_value(),
            ),
        ])
    }
}

impl serde::Serialize for ControllerSpec {
    fn to_value(&self) -> Value {
        let tag = |t: &str, payload: Value| Value::Map(vec![(t.to_string(), payload)]);
        match self {
            ControllerSpec::None => Value::Str("none".into()),
            ControllerSpec::Unlimited => Value::Str("unlimited".into()),
            ControllerSpec::Fixed { bound } => tag(
                "fixed",
                Value::Map(vec![("bound".into(), Value::U64(u64::from(*bound)))]),
            ),
            ControllerSpec::FixedAnalyticOptimum { at_ms, n_max } => tag(
                "fixed_analytic_optimum",
                Value::Map(vec![
                    ("at_ms".into(), Value::Num(*at_ms)),
                    ("n_max".into(), Value::U64(u64::from(*n_max))),
                ]),
            ),
            ControllerSpec::Is(p) => tag("is", p.to_value()),
            ControllerSpec::Pa(p) => tag("pa", p.to_value()),
            ControllerSpec::Iyer(p) => tag("iyer", p.to_value()),
            ControllerSpec::Tay {
                k,
                min_bound,
                max_bound,
            } => tag(
                "tay",
                Value::Map(vec![
                    ("k".into(), Value::U64(u64::from(*k))),
                    ("min_bound".into(), Value::U64(u64::from(*min_bound))),
                    ("max_bound".into(), Value::U64(u64::from(*max_bound))),
                ]),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_spec_parses_with_defaults() {
        let spec: ScenarioSpec = serde_json::from_str(
            r#"{"name": "mini", "horizon_ms": 1000.0}"#,
        )
        .unwrap();
        assert_eq!(spec.name, "mini");
        assert_eq!(spec.replications, 1);
        assert_eq!(spec.cc, CcKind::Certification);
        assert_eq!(spec.controller, ControllerSpec::None);
        assert_eq!(spec.workload, WorkloadSpec::default());
        assert!(!spec.record_optimum);
    }

    #[test]
    fn unknown_keys_are_rejected_everywhere() {
        for bad in [
            r#"{"name": "x", "horizon_ms": 1.0, "horizn": 2.0}"#,
            r#"{"name": "x", "horizon_ms": 1.0, "workload": {"kk": 8}}"#,
            r#"{"name": "x", "horizon_ms": 1.0, "system": {"terminal": 4}}"#,
            r#"{"name": "x", "horizon_ms": 1.0, "controller": {"is": {"beta2": 1}}}"#,
            r#"{"name": "x", "horizon_ms": 1.0, "columns": ["throughputt"]}"#,
        ] {
            let r: Result<ScenarioSpec, _> = serde_json::from_str(bad);
            assert!(r.is_err(), "accepted bad spec {bad}");
        }
    }

    #[test]
    fn controller_specs_parse_with_partial_params() {
        let spec: ScenarioSpec = serde_json::from_str(
            r#"{"name": "c", "horizon_ms": 1.0,
                "controller": {"is": {"initial_bound": 5, "max_bound": 60}}}"#,
        )
        .unwrap();
        let ControllerSpec::Is(p) = spec.controller else {
            panic!("wrong controller");
        };
        assert_eq!(p.initial_bound, 5);
        assert_eq!(p.max_bound, 60);
        // Unspecified fields keep the crate defaults.
        assert_eq!(p.beta, IsParams::default().beta);
    }

    #[test]
    fn cc_aliases_parse() {
        for (alias, want) in [
            ("certification", CcKind::Certification),
            ("2pl", CcKind::TwoPhaseLocking),
            ("wound-wait", CcKind::WoundWait),
            ("mvto", CcKind::Multiversion),
            ("Certification", CcKind::Certification),
        ] {
            let json = format!(r#"{{"name": "c", "horizon_ms": 1.0, "cc": "{alias}"}}"#);
            let spec: ScenarioSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec.cc, want, "{alias}");
        }
    }

    #[test]
    fn truncating_and_mistyped_integers_are_rejected() {
        for bad in [
            // u32 truncation: 2^32 would silently become 0.
            r#"{"name": "x", "horizon_ms": 1.0, "replications": 4294967296}"#,
            r#"{"name": "x", "horizon_ms": 1.0, "controller": {"fixed": {"bound": 4294967296}}}"#,
            r#"{"name": "x", "horizon_ms": 1.0,
                "controller": {"fixed_analytic_optimum": {"n_max": 4294967296}}}"#,
            r#"{"name": "x", "horizon_ms": 1.0,
                "controller": {"tay": {"k": 4294967296, "max_bound": 60}}}"#,
            // Present-but-mistyped optional fields must error, not
            // silently keep their defaults.
            r#"{"name": "x", "horizon_ms": 1.0,
                "controller": {"fixed_analytic_optimum": {"at_ms": "1e6", "n_max": 100}}}"#,
            r#"{"name": "x", "horizon_ms": 1.0,
                "controller": {"tay": {"k": 4, "min_bound": "two", "max_bound": 60}}}"#,
        ] {
            let r: Result<ScenarioSpec, _> = serde_json::from_str(bad);
            assert!(r.is_err(), "accepted bad spec {bad}");
        }
    }

    #[test]
    fn variant_names_are_filename_safe() {
        for bad in ["cc/2pl", "", "a b"] {
            let json = format!(
                r#"{{"name": "x", "horizon_ms": 1.0, "variants": [{{"name": "{bad}"}}]}}"#
            );
            let r: Result<ScenarioSpec, _> = serde_json::from_str(&json);
            assert!(r.is_err(), "accepted variant name `{bad}`");
        }
        // The dot stays legal: `iyer-0.75` is a real ported label.
        let ok: ScenarioSpec = serde_json::from_str(
            r#"{"name": "x", "horizon_ms": 1.0, "variants": [{"name": "iyer-0.75"}]}"#,
        )
        .unwrap();
        assert_eq!(ok.variants[0].name, "iyer-0.75");
    }

    #[test]
    fn open_arrival_rejects_stray_keys() {
        let r: Result<ScenarioSpec, _> = serde_json::from_str(
            r#"{"name": "x", "horizon_ms": 1.0,
                "system": {"arrival": {"open": {
                    "interarrival": {"exponential": 5}, "rate_per_s": 200}}}}"#,
        );
        assert!(r.is_err(), "stray `rate_per_s` key silently dropped");
    }

    #[test]
    fn seed_belongs_at_top_level() {
        let r: Result<ScenarioSpec, _> = serde_json::from_str(
            r#"{"name": "x", "horizon_ms": 1.0, "system": {"seed": 42}}"#,
        );
        assert!(r.is_err());
    }

    #[test]
    fn stat_columns_cover_run_stats() {
        let stats = RunStats {
            duration_ms: 1000.0,
            commits: 10,
            aborts: 2,
            throughput_per_sec: 10.0,
            mean_response_ms: 55.5,
            mean_mpl: 3.3,
            mean_bound: 8.0,
            abort_ratio: 1.0 / 6.0,
            cpu_utilization: 0.5,
            displaced: 1,
            conflicts_per_commit: 0.2,
            lost: 0,
        };
        assert_eq!(StatColumn::Commits.format(&stats), "10");
        assert_eq!(StatColumn::Displaced.format(&stats), "1");
        assert_eq!(StatColumn::ThroughputPerS.format(&stats), "10.0");
        for c in StatColumn::ALL {
            assert_eq!(StatColumn::parse(c.name()).unwrap(), c);
        }
    }
}
