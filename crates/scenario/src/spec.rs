//! The typed scenario spec and its strict JSON (de)serialization.
//!
//! A spec is one experiment: a workload trajectory, a system/control
//! configuration, a controller, and optionally a list of *variants* —
//! named override sets run against the same base (ablation axes). Every
//! unknown key is an error: a typo'd field must never silently keep its
//! default.
//!
//! ```json
//! {
//!   "name": "fig13",
//!   "description": "IS under an abrupt jump of the optimum",
//!   "seed": 987654,
//!   "horizon_ms": 2000000.0,
//!   "cc": "certification",
//!   "system": {"terminals": 500},
//!   "control": {"sample_interval_ms": 2000.0, "warmup_ms": 0.0},
//!   "workload": {"k": {"step": {"at": 1000000.0, "before": 8, "after": 16}}},
//!   "controller": {"is": {"initial_bound": 50, "max_bound": 800}},
//!   "trajectories": true
//! }
//! ```

use alc_core::controller::{
    FixedBound, Hybrid as HybridCtrl, HybridParams, IncrementalSteps, IsParams, IyerRule,
    IyerRuleParams, LoadController, OuterParams, PaOuterParams, PaParams,
    ParabolaApproximation, RetryBudget, RetryBudgetParams, SelfTuningIs as SelfTuningIsCtrl,
    SelfTuningPa as SelfTuningPaCtrl, TayRule, Unlimited,
};
use alc_core::meta::{ConflictThreshold, GuardParams, MetaPolicy, RestartRate, ShadowScore};
use alc_tpsim::client::{ClientConfig, ClientStats, LatencyFeedback, RetryPolicy};
use alc_tpsim::config::{CcKind, SystemConfig};
use alc_tpsim::engine::{RunStats, Trajectories};
use alc_tpsim::workload::WorkloadConfig;
use serde::Value;

use crate::profile::Profile;
use crate::value_util::{normalize_arrival, normalize_dist, override_pairs};
use crate::SpecError;

/// One scenario: the declarative form the `scenario` binary runs.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario id — also the stem of every emitted CSV.
    pub name: String,
    /// One-line description (report title).
    pub description: String,
    /// Master seed of replication 0; later replications derive from it.
    pub seed: u64,
    /// Independent replications per variant (different derived seeds).
    pub replications: u32,
    /// Simulated horizon, ms.
    pub horizon_ms: f64,
    /// Concurrency-control protocol in force at t = 0.
    pub cc: CcKind,
    /// Per-phase CC switches `(t_ms, protocol)` after t = 0 — at each
    /// boundary the engine drains in-flight transactions and swaps the
    /// protocol (the spec's `cc: {"phases": [[0, …], [t, …]]}` form).
    pub cc_phases: Vec<(f64, CcKind)>,
    /// Closed-loop protocol selection (the spec's `cc: {"adaptive": …}`
    /// form): a meta-policy picks the protocol online from the measured
    /// conflict state. Mutually exclusive with `cc_phases` by
    /// construction; `cc` holds `candidates[0]`.
    pub cc_adaptive: Option<AdaptiveCcSpec>,
    /// Scheduled station faults (CPU kill/restart windows).
    pub faults: Vec<FaultSpec>,
    /// Closed-loop client population replacing the patient terminals:
    /// timeouts, retry policies, abandonment, and latency→load feedback
    /// (the overload/metastability vocabulary). `None` keeps the
    /// paper's patient closed model byte-identical.
    pub clients: Option<ClientConfig>,
    /// Shallow overrides on [`SystemConfig`] (dist shorthands allowed;
    /// `seed` is set by the top-level field, not here).
    pub system: Vec<(String, Value)>,
    /// Shallow overrides on [`alc_tpsim::config::ControlConfig`].
    pub control: Vec<(String, Value)>,
    /// The time-varying workload.
    pub workload: WorkloadSpec,
    /// The load controller (or a static/baseline policy).
    pub controller: ControllerSpec,
    /// Record the analytic optimum trajectory `n_opt(t)`.
    pub record_optimum: bool,
    /// Write per-run trajectory CSVs.
    pub trajectories: bool,
    /// Header of the label column in the report table.
    pub label_header: String,
    /// Columns of the report table (raw stats, derived tracking-error
    /// columns, per-variant input cells, literals).
    pub columns: Vec<ColumnSpec>,
    /// Named override sets producing one run group each (mutually
    /// exclusive with `sweep`).
    pub variants: Vec<VariantSpec>,
    /// Grid axes expanding into one run per cross-product cell —
    /// load–throughput curves and protocol grids (mutually exclusive
    /// with `variants`).
    pub sweep: Option<SweepSpec>,
    /// Literal per-variant table cells, keyed by variant name: the swept
    /// *inputs* of an ablation (e.g. the α of each variant), rendered by
    /// `{"input": …}` columns and `label_from`.
    pub inputs: VariantInputs,
    /// When set, the report's label column shows this input cell instead
    /// of the variant name (names must stay unique; labels need not).
    pub label_from: Option<String>,
    /// Path → value overrides applied under `--quick` (CI scale).
    pub quick: Vec<(String, Value)>,
}

/// Literal per-variant input cells: `(variant name, [(cell, text)])`.
pub type VariantInputs = Vec<(String, Vec<(String, String)>)>;

/// One scheduled station fault: `cpus_down` CPUs die at `at_ms` and come
/// back after the recovery window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Kill time, ms.
    pub at_ms: f64,
    /// How long the outage lasts.
    pub recovery: FaultRecovery,
    /// Servers killed (restored when the recovery window closes).
    pub cpus_down: u32,
}

/// How a fault's outage length is determined: a fixed window (the
/// spec's `duration` field) or a mean-time-to-repair distribution (the
/// `repair` field), sampled once per fault from the run's own
/// `fault_repair` RNG substream — per-replication deterministic, and
/// drawing it never perturbs any other stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultRecovery {
    /// Fixed outage length, ms.
    Fixed(f64),
    /// Repair-time distribution, ms (sampled per fault per replication;
    /// negative samples clamp to an instant repair).
    Repair(alc_des::dist::Dist),
}

/// The spec/CSV name of a protocol — the short aliases the `cc` field
/// accepts, also used by `time_in_protocol` column headers and the
/// switch-event CSV.
pub fn cc_spec_name(cc: CcKind) -> &'static str {
    match cc {
        CcKind::Certification => "certification",
        CcKind::TwoPhaseLocking => "2pl",
        CcKind::TimestampOrdering => "timestamp-ordering",
        CcKind::WoundWait => "wound-wait",
        CcKind::WaitDie => "wait-die",
        CcKind::Multiversion => "mvto",
    }
}

/// The `cc: {"adaptive": …}` section: candidate protocols, the policy
/// choosing among them, and the anti-oscillation guards. The run starts
/// under `candidates[0]`; at every measurement interval the policy sees
/// the interval's conflict state and may drain-and-swap to another
/// candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveCcSpec {
    /// The candidate protocols, in the order the policy indexes them
    /// (for the ladder policies: calmest workload first).
    pub candidates: Vec<CcKind>,
    /// The selection policy.
    pub policy: MetaPolicySpec,
    /// Minimum time between switches, seconds (also from run start).
    pub min_dwell_s: f64,
    /// Post-switch settling window, seconds: observations inside it are
    /// discarded.
    pub cooldown_s: f64,
    /// Relative dead band / challenger margin (see `alc_core::meta`).
    pub hysteresis: f64,
}

/// The policy inside an adaptive `cc` section.
#[derive(Debug, Clone, PartialEq)]
pub enum MetaPolicySpec {
    /// Threshold-with-hysteresis ladder on the EWMA'd conflict ratio.
    ConflictThreshold {
        /// Centre of the conflict-ratio band (conflicts per commit).
        threshold: f64,
        /// EWMA weight on each new observation, in (0, 1].
        ewma_weight: f64,
    },
    /// The same ladder on the EWMA'd abort (restart) ratio.
    RestartRate {
        /// Centre of the abort-ratio band, in (0, 1).
        threshold: f64,
        /// EWMA weight on each new observation, in (0, 1].
        ewma_weight: f64,
    },
    /// O|R|P|E-style per-candidate running throughput scores.
    ShadowScore {
        /// EWMA weight on each interval's throughput, in (0, 1].
        ewma_weight: f64,
    },
}

impl AdaptiveCcSpec {
    /// Instantiates the candidate list and the boxed policy for one run.
    pub fn build(&self) -> (Vec<CcKind>, Box<dyn MetaPolicy>) {
        let guard = GuardParams {
            min_dwell_ms: self.min_dwell_s * 1000.0,
            cooldown_ms: self.cooldown_s * 1000.0,
            hysteresis: self.hysteresis,
        };
        let n = self.candidates.len();
        let policy: Box<dyn MetaPolicy> = match &self.policy {
            MetaPolicySpec::ConflictThreshold {
                threshold,
                ewma_weight,
            } => Box::new(ConflictThreshold::new(n, *threshold, *ewma_weight, guard)),
            MetaPolicySpec::RestartRate {
                threshold,
                ewma_weight,
            } => Box::new(RestartRate::new(n, *threshold, *ewma_weight, guard)),
            MetaPolicySpec::ShadowScore { ewma_weight } => {
                Box::new(ShadowScore::new(n, *ewma_weight, guard))
            }
        };
        (self.candidates.clone(), policy)
    }
}

/// The sweep section: a grid of axes, each a spec path and a value list;
/// the compiler expands the exact cross-product into one run per cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// The grid axes; the first axis is the report's row label, the last
    /// axis pivots into columns when `pivot` is set.
    pub axes: Vec<SweepAxis>,
    /// Pivot the last axis into one column per value, showing `stat`.
    pub pivot: Option<PivotSpec>,
}

/// One sweep axis.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAxis {
    /// Column header of the axis in the report.
    pub header: String,
    /// Dotted spec path each value is applied to.
    pub path: String,
    /// The grid values (any JSON value the path accepts).
    pub values: Vec<Value>,
    /// Explicit display labels (default: rendered from the values).
    pub labels: Option<Vec<String>>,
}

/// Pivot settings: the last axis becomes columns named
/// `<prefix><label>`, each showing `stat` for that cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PivotSpec {
    /// The stat shown in the pivoted cells.
    pub stat: StatColumn,
    /// Column-name prefix (e.g. `T_`).
    pub prefix: String,
}

impl SweepAxis {
    /// Display label of value `i` (explicit label, else rendered).
    pub fn label(&self, i: usize) -> String {
        if let Some(labels) = &self.labels {
            return labels[i].clone();
        }
        render_axis_value(&self.values[i])
    }
}

/// Renders a sweep-axis value for row labels and cell names: integers
/// verbatim, floats through the shared table format, strings as-is.
fn render_axis_value(v: &Value) -> String {
    match v {
        Value::U64(x) => x.to_string(),
        Value::Num(x) => alc_bench::table::num(*x),
        Value::Str(s) => s.clone(),
        Value::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

/// One variant: a named set of overrides on the base spec.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantSpec {
    /// Variant label (row label, trajectory-file suffix).
    pub name: String,
    /// Path → value overrides applied for this variant.
    pub set: Vec<(String, Value)>,
    /// Additional path → value overrides applied under `--quick`, after
    /// the spec-level quick overrides.
    pub quick: Vec<(String, Value)>,
}

/// The workload section: one [`Profile`] per time-varying parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Items accessed per transaction, `k(t)`.
    pub k: Profile,
    /// Read-only fraction `q(t)`.
    pub query_frac: Profile,
    /// Updater write-access fraction `w(t)`.
    pub write_frac: Profile,
    /// Zipf access skew θ(t) (hot-spot drift).
    pub access_skew: Profile,
    /// Open-mode arrival-rate multiplier `a(t)` (surges, flash crowds).
    pub arrival_rate_factor: Profile,
    /// Closed-mode think-time multiplier `h(t)`.
    pub think_time_factor: Profile,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            k: Profile::Constant(8.0),
            query_frac: Profile::Constant(0.2),
            write_frac: Profile::Constant(0.25),
            access_skew: Profile::Constant(0.0),
            arrival_rate_factor: Profile::Constant(1.0),
            think_time_factor: Profile::Constant(1.0),
        }
    }
}

impl WorkloadSpec {
    /// Lowers every profile into the engine's [`WorkloadConfig`].
    pub fn lower(&self, base_dir: &std::path::Path) -> Result<WorkloadConfig, SpecError> {
        Ok(WorkloadConfig {
            k: self.k.lower(base_dir)?,
            query_frac: self.query_frac.lower(base_dir)?,
            write_frac: self.write_frac.lower(base_dir)?,
            access_skew: self.access_skew.lower(base_dir)?,
            arrival_rate_factor: self.arrival_rate_factor.lower(base_dir)?,
            think_time_factor: self.think_time_factor.lower(base_dir)?,
        })
    }
}

/// The controller section: the §4 feedback controllers, the self-tuning
/// baselines and the static rules of thumb, each with full parameter
/// control (omitted parameters keep their crate defaults).
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerSpec {
    /// No controller: the gate stays at `control.initial_bound`.
    None,
    /// No admission limit at all (`Unlimited` baseline).
    Unlimited,
    /// A fixed static bound.
    Fixed {
        /// The bound.
        bound: u32,
    },
    /// A fixed bound pinned to the *analytic* optimum of the compiled
    /// workload at `at_ms` — the "perfectly informed DBA" baseline.
    FixedAnalyticOptimum {
        /// Workload time the optimum is computed at, ms.
        at_ms: f64,
        /// Scan limit for the optimum search.
        n_max: u32,
    },
    /// Incremental Steps (§4.1).
    Is(IsParams),
    /// Parabola Approximation (§4.2).
    Pa(PaParams),
    /// IS with the §5 outer loop auto-tuning its gain β.
    SelfTuningIs {
        /// Inner IS parameters.
        is: IsParams,
        /// Outer-loop tuning.
        outer: OuterParams,
    },
    /// PA with the §5 outer loop auto-tuning its forgetting factor α.
    SelfTuningPa {
        /// Inner PA parameters.
        pa: PaParams,
        /// Outer-loop tuning.
        outer: PaOuterParams,
    },
    /// The IS-bootstrapped, PA-refined hybrid.
    Hybrid(HybridParams),
    /// Iyer's conflict-rate rule as a feedback baseline.
    Iyer(IyerRuleParams),
    /// Token-bucket retry budgeting (mirrors the runtime's
    /// `RetryBudgetLaw` decision-for-decision, so its gate logs replay
    /// through the embeddable law).
    RetryBudget(RetryBudgetParams),
    /// Tay's static `k²n/D < 1.5` rule of thumb.
    Tay {
        /// The (assumed) locks per transaction.
        k: u32,
        /// Static lower bound.
        min_bound: u32,
        /// Static upper bound.
        max_bound: u32,
    },
}

impl ControllerSpec {
    /// Instantiates the controller against the compiled system/workload
    /// (`None` means "run with the static initial bound").
    pub fn build(
        &self,
        sys: &SystemConfig,
        workload: &WorkloadConfig,
    ) -> Option<Box<dyn LoadController>> {
        match self {
            ControllerSpec::None => None,
            ControllerSpec::Unlimited => Some(Box::new(Unlimited)),
            ControllerSpec::Fixed { bound } => Some(Box::new(FixedBound::new(*bound))),
            ControllerSpec::FixedAnalyticOptimum { at_ms, n_max } => Some(Box::new(
                FixedBound::new(workload.analytic_optimum(*at_ms, sys, *n_max)),
            )),
            ControllerSpec::Is(p) => Some(Box::new(IncrementalSteps::new(*p))),
            ControllerSpec::Pa(p) => Some(Box::new(ParabolaApproximation::new(*p))),
            ControllerSpec::SelfTuningIs { is, outer } => {
                Some(Box::new(SelfTuningIsCtrl::new(*is, *outer)))
            }
            ControllerSpec::SelfTuningPa { pa, outer } => {
                Some(Box::new(SelfTuningPaCtrl::new(*pa, *outer)))
            }
            ControllerSpec::Hybrid(p) => Some(Box::new(HybridCtrl::new(*p))),
            ControllerSpec::Iyer(p) => Some(Box::new(IyerRule::new(*p))),
            ControllerSpec::RetryBudget(p) => Some(Box::new(RetryBudget::new(*p))),
            ControllerSpec::Tay {
                k,
                min_bound,
                max_bound,
            } => Some(Box::new(TayRule::new(
                *k,
                sys.db_size,
                *min_bound,
                *max_bound,
            ))),
        }
    }
}

/// A raw-statistics column of the report table. Integer counters format
/// via `to_string`, continuous values via the shared `num` table format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatColumn {
    /// Commits per second.
    ThroughputPerS,
    /// Aborted / finished runs.
    AbortRatio,
    /// Mean response time, ms.
    MeanResponseMs,
    /// Time-averaged observed MPL.
    MeanMpl,
    /// Time-averaged gate bound.
    MeanBound,
    /// Committed transactions.
    Commits,
    /// Aborted runs.
    Aborts,
    /// Displacement victims.
    Displaced,
    /// Open-mode lost arrivals.
    Lost,
    /// Data conflicts per commit.
    ConflictsPerCommit,
    /// Mean CPU utilization.
    CpuUtilization,
}

impl StatColumn {
    /// Every column, for `scenario --help` listings.
    pub const ALL: [StatColumn; 11] = [
        StatColumn::ThroughputPerS,
        StatColumn::AbortRatio,
        StatColumn::MeanResponseMs,
        StatColumn::MeanMpl,
        StatColumn::MeanBound,
        StatColumn::Commits,
        StatColumn::Aborts,
        StatColumn::Displaced,
        StatColumn::Lost,
        StatColumn::ConflictsPerCommit,
        StatColumn::CpuUtilization,
    ];

    /// The column's spec/CSV name.
    pub fn name(&self) -> &'static str {
        match self {
            StatColumn::ThroughputPerS => "throughput_per_s",
            StatColumn::AbortRatio => "abort_ratio",
            StatColumn::MeanResponseMs => "mean_response_ms",
            StatColumn::MeanMpl => "mean_mpl",
            StatColumn::MeanBound => "mean_bound",
            StatColumn::Commits => "commits",
            StatColumn::Aborts => "aborts",
            StatColumn::Displaced => "displaced",
            StatColumn::Lost => "lost",
            StatColumn::ConflictsPerCommit => "conflicts_per_commit",
            StatColumn::CpuUtilization => "cpu_utilization",
        }
    }

    /// Parses a spec/CSV name.
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        StatColumn::ALL
            .into_iter()
            .find(|c| c.name() == s)
            .ok_or_else(|| SpecError::new(format!("unknown stat column `{s}`")))
    }

    /// Formats the column's value from run statistics.
    pub fn format(&self, stats: &RunStats) -> String {
        use alc_bench::table::num;
        match self {
            StatColumn::ThroughputPerS => num(stats.throughput_per_sec),
            StatColumn::AbortRatio => num(stats.abort_ratio),
            StatColumn::MeanResponseMs => num(stats.mean_response_ms),
            StatColumn::MeanMpl => num(stats.mean_mpl),
            StatColumn::MeanBound => num(stats.mean_bound),
            StatColumn::Commits => stats.commits.to_string(),
            StatColumn::Aborts => stats.aborts.to_string(),
            StatColumn::Displaced => stats.displaced.to_string(),
            StatColumn::Lost => stats.lost.to_string(),
            StatColumn::ConflictsPerCommit => num(stats.conflicts_per_commit),
            StatColumn::CpuUtilization => num(stats.cpu_utilization),
        }
    }
}

/// A client-population column of the report table, rendered from the
/// run's [`ClientStats`] (`-` for runs without a `clients` section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientColumn {
    /// Requests issued by the pool.
    Issued,
    /// Total attempts (first attempts + retries + hedges).
    Attempts,
    /// Retry attempts (including hedge duplicates).
    Retries,
    /// Requests abandoned after exhausting patience or budget.
    Abandoned,
    /// Attempt timeouts observed.
    Timeouts,
    /// Retry attempts bounced at the gate by retry shedding.
    ShedRetries,
    /// Committed requests per second — throughput net of wasted retries.
    GoodputPerS,
    /// Attempts per issued request (`1.0` = no retry traffic at all).
    RetryAmplification,
}

impl ClientColumn {
    /// Every column, for `scenario --help` listings.
    pub const ALL: [ClientColumn; 8] = [
        ClientColumn::Issued,
        ClientColumn::Attempts,
        ClientColumn::Retries,
        ClientColumn::Abandoned,
        ClientColumn::Timeouts,
        ClientColumn::ShedRetries,
        ClientColumn::GoodputPerS,
        ClientColumn::RetryAmplification,
    ];

    /// The column's spec/CSV name.
    pub fn name(&self) -> &'static str {
        match self {
            ClientColumn::Issued => "issued",
            ClientColumn::Attempts => "attempts",
            ClientColumn::Retries => "retries",
            ClientColumn::Abandoned => "abandoned",
            ClientColumn::Timeouts => "timeouts",
            ClientColumn::ShedRetries => "shed_retries",
            ClientColumn::GoodputPerS => "goodput_per_s",
            ClientColumn::RetryAmplification => "retry_amplification",
        }
    }

    /// Parses a spec/CSV name.
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        ClientColumn::ALL
            .into_iter()
            .find(|c| c.name() == s)
            .ok_or_else(|| SpecError::new(format!("unknown client column `{s}`")))
    }

    /// Formats the column from the run's client stats (`-` when the run
    /// had no client pool).
    pub fn format(&self, clients: Option<&ClientStats>, duration_ms: f64) -> String {
        use alc_bench::table::num;
        let Some(s) = clients else {
            return "-".to_string();
        };
        match self {
            ClientColumn::Issued => s.issued.to_string(),
            ClientColumn::Attempts => s.attempts.to_string(),
            ClientColumn::Retries => s.retries.to_string(),
            ClientColumn::Abandoned => s.abandoned.to_string(),
            ClientColumn::Timeouts => s.timeouts.to_string(),
            ClientColumn::ShedRetries => s.shed.to_string(),
            ClientColumn::GoodputPerS => num(s.goodput_per_sec(duration_ms)),
            ClientColumn::RetryAmplification => num(s.retry_amplification()),
        }
    }
}

/// One report column: a raw stat, a trajectory-derived quantity, a
/// per-variant input cell, or a literal.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnSpec {
    /// A raw-statistics column.
    Stat(StatColumn),
    /// A client-population column (needs a `clients` section).
    Client(ClientColumn),
    /// A column computed from the run's [`Trajectories`].
    Derived(DerivedColumn),
    /// The variant's literal cell from the spec's `inputs` map.
    Input(String),
    /// The same literal in every row (placeholder columns).
    Literal {
        /// Column header.
        header: String,
        /// Cell text.
        value: String,
    },
}

/// A column computed from the recorded trajectories after the run.
#[derive(Debug, Clone, PartialEq)]
pub enum DerivedColumn {
    /// Mean |bound − n_opt| over the last quarter of the samples — the
    /// post-jump tracking error of the ablation tables (requires
    /// `record_optimum`).
    PostJumpTrackingErr,
    /// Settling time: seconds from `after_frac · horizon` until the
    /// bound first enters the ±`band` relative band around the final
    /// optimum; renders `never` when it doesn't (requires
    /// `record_optimum`).
    SettlingTime {
        /// Column header (e.g. `response_s`).
        header: String,
        /// Fraction of the horizon the clock starts at (the jump time).
        after_frac: f64,
        /// Relative band around the final optimum.
        band: f64,
    },
    /// The per-interval conflicts-per-commit value at the sample where
    /// the interval throughput peaked — where on the conflict curve the
    /// run's best operating point sat.
    ConflictRatioAtPeak,
    /// Completed CC-protocol switches in the run (scheduled or
    /// policy-driven), from the switch-event trace.
    SwitchCount,
    /// Seconds the given protocol was in force over `[0, horizon]`,
    /// from the switch-event trace (drains count toward the *outgoing*
    /// protocol — it stays in force until the swap completes).
    TimeInProtocol {
        /// The protocol whose residence time is reported.
        cc: CcKind,
        /// Column header (default `time_in_protocol:<name>`).
        header: Option<String>,
    },
    /// Seconds from the last switch's completion until the interval
    /// throughput first enters the ±`band` relative band around its
    /// settled post-switch level (the mean of the final quarter of the
    /// post-switch samples); `never` when it doesn't, `-` for runs
    /// without a switch.
    PostSwitchSettling {
        /// Column header (e.g. `post_switch_settling_time_s`).
        header: String,
        /// Relative band around the settled level.
        band: f64,
    },
    /// Seconds from `after_ms` (a fault-repair time) until interval
    /// throughput *permanently* re-enters `band × baseline`, where the
    /// baseline is the mean throughput before `after_ms`. A metastable
    /// run — retry traffic holding the system down after repair —
    /// renders `never`.
    TimeToRecover {
        /// Column header (default `time_to_recover_s`).
        header: String,
        /// The recovery clock's start (the repair completion), ms.
        after_ms: f64,
        /// Fraction of the pre-fault baseline that counts as recovered.
        band: f64,
    },
}

impl ColumnSpec {
    /// The column's header text.
    pub fn header(&self) -> String {
        match self {
            ColumnSpec::Stat(c) => c.name().to_string(),
            ColumnSpec::Derived(DerivedColumn::PostJumpTrackingErr) => {
                "post_jump_tracking_err".to_string()
            }
            ColumnSpec::Derived(DerivedColumn::SettlingTime { header, .. }) => header.clone(),
            ColumnSpec::Derived(DerivedColumn::ConflictRatioAtPeak) => {
                "conflict_ratio_at_peak".to_string()
            }
            ColumnSpec::Derived(DerivedColumn::SwitchCount) => "switch_count".to_string(),
            ColumnSpec::Derived(DerivedColumn::TimeInProtocol { cc, header }) => header
                .clone()
                .unwrap_or_else(|| format!("time_in_protocol:{}", cc_spec_name(*cc))),
            ColumnSpec::Derived(DerivedColumn::PostSwitchSettling { header, .. }) => {
                header.clone()
            }
            ColumnSpec::Derived(DerivedColumn::TimeToRecover { header, .. }) => header.clone(),
            ColumnSpec::Client(c) => c.name().to_string(),
            ColumnSpec::Input(name) => name.clone(),
            ColumnSpec::Literal { header, .. } => header.clone(),
        }
    }

    /// Whether the runner must retain trajectories to render the column.
    pub fn needs_trajectories(&self) -> bool {
        matches!(self, ColumnSpec::Derived(_))
    }

    /// Whether the column needs the analytic-optimum trajectory.
    pub fn needs_optimum(&self) -> bool {
        matches!(
            self,
            ColumnSpec::Derived(
                DerivedColumn::PostJumpTrackingErr | DerivedColumn::SettlingTime { .. }
            )
        )
    }
}

impl DerivedColumn {
    /// Formats the column from a run's trajectories (`horizon_ms` anchors
    /// the settling clock and closes the last protocol-residence segment;
    /// `initial_cc` is the protocol in force at t = 0, which the switch
    /// trace alone cannot tell).
    pub fn format(&self, traj: &Trajectories, horizon_ms: f64, initial_cc: CcKind) -> String {
        use alc_bench::table::num;
        match self {
            DerivedColumn::PostJumpTrackingErr => {
                // Same definition as the bespoke ablation harness: mean
                // absolute bound error vs the final optimum over the last
                // quarter of the samples.
                let pts = traj.bound.points();
                let start = pts.len() * 3 / 4;
                let opt = traj.optimum.last_value().unwrap_or(f64::NAN);
                let tail = &pts[start..];
                num(tail.iter().map(|&(_, b)| (b - opt).abs()).sum::<f64>()
                    / tail.len().max(1) as f64)
            }
            DerivedColumn::SettlingTime {
                after_frac, band, ..
            } => {
                let opt_after = traj.optimum.last_value().unwrap_or(f64::NAN);
                let after_ms = after_frac * horizon_ms;
                traj.bound
                    .points()
                    .iter()
                    .filter(|&&(t, _)| t >= after_ms)
                    .find(|&&(_, b)| (b - opt_after).abs() <= band * opt_after)
                    .map(|&(t, _)| (t - after_ms) / 1000.0)
                    .map_or("never".into(), num)
            }
            DerivedColumn::ConflictRatioAtPeak => {
                let tp = traj.throughput.points();
                let mut peak: Option<usize> = None;
                for (i, &(_, x)) in tp.iter().enumerate() {
                    if peak.is_none_or(|p| x > tp[p].1) {
                        peak = Some(i);
                    }
                }
                peak.and_then(|i| traj.conflict_ratio.points().get(i))
                    .map_or("-".into(), |&(_, v)| num(v))
            }
            DerivedColumn::SwitchCount => traj.switches.len().to_string(),
            DerivedColumn::TimeInProtocol { cc, .. } => {
                // Walk the residence segments: a protocol stays in force
                // until the swap that replaces it *completes*.
                let mut total = 0.0;
                let mut seg_start = 0.0;
                let mut current = initial_cc;
                for e in &traj.switches {
                    if current == *cc {
                        total += e.completed_at_ms - seg_start;
                    }
                    seg_start = e.completed_at_ms;
                    current = e.to;
                }
                if current == *cc {
                    total += horizon_ms - seg_start;
                }
                num(total / 1000.0)
            }
            DerivedColumn::PostSwitchSettling { band, .. } => {
                let Some(last) = traj.switches.last() else {
                    return "-".into();
                };
                let t0 = last.completed_at_ms;
                let pts: Vec<(f64, f64)> = traj
                    .throughput
                    .points()
                    .iter()
                    .copied()
                    .filter(|&(t, _)| t >= t0)
                    .collect();
                if pts.is_empty() {
                    return "never".into();
                }
                // The settled level: mean of the final quarter of the
                // post-switch samples.
                let tail = &pts[pts.len() * 3 / 4..];
                let settled =
                    tail.iter().map(|&(_, x)| x).sum::<f64>() / tail.len().max(1) as f64;
                pts.iter()
                    .find(|&&(_, x)| (x - settled).abs() <= band * settled.abs())
                    .map(|&(t, _)| (t - t0) / 1000.0)
                    .map_or("never".into(), num)
            }
            DerivedColumn::TimeToRecover { after_ms, band, .. } => {
                let pts = traj.throughput.points();
                let before: Vec<f64> = pts
                    .iter()
                    .filter(|&&(t, _)| t <= *after_ms)
                    .map(|&(_, x)| x)
                    .collect();
                if before.is_empty() {
                    return "-".into();
                }
                let baseline = before.iter().sum::<f64>() / before.len() as f64;
                let floor = band * baseline;
                // Recovery must be *permanent*: the first post-repair
                // sample from which every later sample stays above the
                // floor. A dip back below (hysteresis) resets the clock,
                // so a metastable run that oscillates renders `never`.
                // The comparison uses a trailing 4-sample mean so a
                // single sparse interval of a healthy closed population
                // does not read as a relapse.
                let mut recovered_at = None;
                let mut window = std::collections::VecDeque::with_capacity(4);
                for &(t, x) in pts.iter().filter(|&&(t, _)| t >= *after_ms) {
                    if window.len() == 4 {
                        window.pop_front();
                    }
                    window.push_back(x);
                    let smoothed = window.iter().sum::<f64>() / window.len() as f64;
                    if smoothed >= floor {
                        recovered_at.get_or_insert(t);
                    } else {
                        recovered_at = None;
                    }
                }
                recovered_at
                    .map(|t| (t - after_ms) / 1000.0)
                    .map_or("never".into(), num)
            }
        }
    }
}

fn column_from_value(v: &Value) -> Result<ColumnSpec, SpecError> {
    if let Value::Str(s) = v {
        return Ok(match s.as_str() {
            "post_jump_tracking_err" => {
                ColumnSpec::Derived(DerivedColumn::PostJumpTrackingErr)
            }
            "conflict_ratio_at_peak" => ColumnSpec::Derived(DerivedColumn::ConflictRatioAtPeak),
            "switch_count" => ColumnSpec::Derived(DerivedColumn::SwitchCount),
            "post_switch_settling_time_s" => {
                ColumnSpec::Derived(DerivedColumn::PostSwitchSettling {
                    header: "post_switch_settling_time_s".to_string(),
                    band: 0.25,
                })
            }
            name => {
                if let Ok(c) = StatColumn::parse(name) {
                    ColumnSpec::Stat(c)
                } else if let Ok(c) = ClientColumn::parse(name) {
                    ColumnSpec::Client(c)
                } else {
                    return Err(SpecError::new(format!("unknown column `{name}`")));
                }
            }
        });
    }
    let Some([(tag, payload)]) = v.as_map() else {
        return Err(SpecError::new(
            "column must be a stat/derived/client name or a single-key object \
             (settling_time_s/time_in_protocol/post_switch_settling_time_s/\
             time_to_recover_s/input/literal)",
        ));
    };
    Ok(match tag.as_str() {
        "settling_time_s" => {
            let mut header = "settling_time_s".to_string();
            let mut after_frac = None;
            let mut band = 0.25;
            for (k, val) in payload.as_map().unwrap_or(&[]) {
                match k.as_str() {
                    "header" => match val {
                        Value::Str(s) => header = s.clone(),
                        _ => {
                            return Err(SpecError::new("`settling_time_s.header` must be a string"))
                        }
                    },
                    "after_frac" => {
                        after_frac = Some(val.as_f64().ok_or_else(|| {
                            SpecError::new("`settling_time_s.after_frac` must be numeric")
                        })?);
                    }
                    "band" => {
                        band = val.as_f64().ok_or_else(|| {
                            SpecError::new("`settling_time_s.band` must be numeric")
                        })?;
                    }
                    other => {
                        return Err(SpecError::new(format!(
                            "unknown `settling_time_s` field `{other}`"
                        )));
                    }
                }
            }
            let after_frac = after_frac
                .ok_or_else(|| SpecError::new("`settling_time_s` needs `after_frac`"))?;
            if !(0.0..1.0).contains(&after_frac) {
                return Err(SpecError::new(
                    "`settling_time_s.after_frac` must lie in [0, 1)",
                ));
            }
            if band <= 0.0 {
                return Err(SpecError::new("`settling_time_s.band` must be positive"));
            }
            ColumnSpec::Derived(DerivedColumn::SettlingTime {
                header,
                after_frac,
                band,
            })
        }
        "time_in_protocol" => {
            let mut cc = None;
            let mut header = None;
            for (k, val) in payload.as_map().unwrap_or(&[]) {
                match k.as_str() {
                    "cc" => cc = Some(cc_from_value(val)?),
                    "header" => match val {
                        Value::Str(s) if !s.is_empty() => header = Some(s.clone()),
                        _ => {
                            return Err(SpecError::new(
                                "`time_in_protocol.header` must be a non-empty string",
                            ));
                        }
                    },
                    other => {
                        return Err(SpecError::new(format!(
                            "unknown `time_in_protocol` field `{other}`"
                        )));
                    }
                }
            }
            ColumnSpec::Derived(DerivedColumn::TimeInProtocol {
                cc: cc.ok_or_else(|| SpecError::new("`time_in_protocol` needs `cc`"))?,
                header,
            })
        }
        "post_switch_settling_time_s" => {
            let mut header = "post_switch_settling_time_s".to_string();
            let mut band = 0.25;
            for (k, val) in payload.as_map().unwrap_or(&[]) {
                match k.as_str() {
                    "header" => match val {
                        Value::Str(s) if !s.is_empty() => header = s.clone(),
                        _ => {
                            return Err(SpecError::new(
                                "`post_switch_settling_time_s.header` must be a non-empty string",
                            ));
                        }
                    },
                    "band" => {
                        band = positive_f64(val, "post_switch_settling_time_s.band")?;
                    }
                    other => {
                        return Err(SpecError::new(format!(
                            "unknown `post_switch_settling_time_s` field `{other}`"
                        )));
                    }
                }
            }
            ColumnSpec::Derived(DerivedColumn::PostSwitchSettling { header, band })
        }
        "time_to_recover_s" => {
            let mut header = "time_to_recover_s".to_string();
            let mut after_ms = None;
            let mut band = 0.7;
            for (k, val) in payload.as_map().unwrap_or(&[]) {
                match k.as_str() {
                    "header" => match val {
                        Value::Str(s) if !s.is_empty() => header = s.clone(),
                        _ => {
                            return Err(SpecError::new(
                                "`time_to_recover_s.header` must be a non-empty string",
                            ));
                        }
                    },
                    "after_ms" => {
                        after_ms = Some(positive_f64(val, "time_to_recover_s.after_ms")?);
                    }
                    "band" => {
                        band = positive_f64(val, "time_to_recover_s.band")?;
                    }
                    other => {
                        return Err(SpecError::new(format!(
                            "unknown `time_to_recover_s` field `{other}`"
                        )));
                    }
                }
            }
            ColumnSpec::Derived(DerivedColumn::TimeToRecover {
                header,
                after_ms: after_ms
                    .ok_or_else(|| SpecError::new("`time_to_recover_s` needs `after_ms`"))?,
                band,
            })
        }
        "input" => match payload {
            Value::Str(s) if !s.is_empty() => ColumnSpec::Input(s.clone()),
            _ => return Err(SpecError::new("`input` column needs a non-empty cell name")),
        },
        "literal" => {
            let header = match payload.get("header") {
                Some(Value::Str(s)) => s.clone(),
                _ => return Err(SpecError::new("`literal` column needs a string `header`")),
            };
            let value = match payload.get("value") {
                Some(Value::Str(s)) => s.clone(),
                _ => return Err(SpecError::new("`literal` column needs a string `value`")),
            };
            for (k, _) in payload.as_map().unwrap_or(&[]) {
                if k != "header" && k != "value" {
                    return Err(SpecError::new(format!("unknown `literal` field `{k}`")));
                }
            }
            ColumnSpec::Literal { header, value }
        }
        other => {
            return Err(SpecError::new(format!("unknown column kind `{other}`")));
        }
    })
}

impl serde::Serialize for ColumnSpec {
    fn to_value(&self) -> Value {
        match self {
            ColumnSpec::Stat(c) => Value::Str(c.name().to_string()),
            ColumnSpec::Client(c) => Value::Str(c.name().to_string()),
            ColumnSpec::Derived(DerivedColumn::TimeToRecover {
                header,
                after_ms,
                band,
            }) => Value::Map(vec![(
                "time_to_recover_s".into(),
                Value::Map(vec![
                    ("header".into(), Value::Str(header.clone())),
                    ("after_ms".into(), Value::Num(*after_ms)),
                    ("band".into(), Value::Num(*band)),
                ]),
            )]),
            ColumnSpec::Derived(DerivedColumn::PostJumpTrackingErr) => {
                Value::Str("post_jump_tracking_err".into())
            }
            ColumnSpec::Derived(DerivedColumn::ConflictRatioAtPeak) => {
                Value::Str("conflict_ratio_at_peak".into())
            }
            ColumnSpec::Derived(DerivedColumn::SwitchCount) => Value::Str("switch_count".into()),
            ColumnSpec::Derived(DerivedColumn::TimeInProtocol { cc, header }) => {
                let mut m = vec![(
                    "cc".to_string(),
                    Value::Str(cc_spec_name(*cc).to_string()),
                )];
                if let Some(h) = header {
                    m.push(("header".into(), Value::Str(h.clone())));
                }
                Value::Map(vec![("time_in_protocol".into(), Value::Map(m))])
            }
            ColumnSpec::Derived(DerivedColumn::PostSwitchSettling { header, band }) => {
                Value::Map(vec![(
                    "post_switch_settling_time_s".into(),
                    Value::Map(vec![
                        ("header".into(), Value::Str(header.clone())),
                        ("band".into(), Value::Num(*band)),
                    ]),
                )])
            }
            ColumnSpec::Derived(DerivedColumn::SettlingTime {
                header,
                after_frac,
                band,
            }) => Value::Map(vec![(
                "settling_time_s".into(),
                Value::Map(vec![
                    ("header".into(), Value::Str(header.clone())),
                    ("after_frac".into(), Value::Num(*after_frac)),
                    ("band".into(), Value::Num(*band)),
                ]),
            )]),
            ColumnSpec::Input(name) => Value::Map(vec![(
                "input".into(),
                Value::Str(name.clone()),
            )]),
            ColumnSpec::Literal { header, value } => Value::Map(vec![(
                "literal".into(),
                Value::Map(vec![
                    ("header".into(), Value::Str(header.clone())),
                    ("value".into(), Value::Str(value.clone())),
                ]),
            )]),
        }
    }
}

/// Default report columns.
fn default_columns() -> Vec<ColumnSpec> {
    [
        StatColumn::ThroughputPerS,
        StatColumn::AbortRatio,
        StatColumn::MeanResponseMs,
        StatColumn::MeanMpl,
        StatColumn::MeanBound,
    ]
    .into_iter()
    .map(ColumnSpec::Stat)
    .collect()
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Parses a u32 field, rejecting non-integers and values that would
/// truncate (a silent `as u32` wrap could turn a typo into bound 0).
fn u32_from(v: &Value, what: &str) -> Result<u32, SpecError> {
    v.as_u64()
        .filter(|&x| x <= u64::from(u32::MAX))
        .map(|x| x as u32)
        .ok_or_else(|| SpecError::new(format!("`{what}` must be an integer ≤ u32::MAX")))
}

/// Parses a CC protocol: canonical variant names plus the CLI aliases.
fn cc_from_value(v: &Value) -> Result<CcKind, SpecError> {
    if let Value::Str(s) = v {
        let alias = match s.as_str() {
            "certification" | "cert" | "occ" => Some(CcKind::Certification),
            "2pl" | "two-phase-locking" => Some(CcKind::TwoPhaseLocking),
            "timestamp-ordering" | "to" => Some(CcKind::TimestampOrdering),
            "wound-wait" => Some(CcKind::WoundWait),
            "wait-die" => Some(CcKind::WaitDie),
            "mvto" | "multiversion" => Some(CcKind::Multiversion),
            _ => None,
        };
        if let Some(cc) = alias {
            return Ok(cc);
        }
    }
    <CcKind as serde::Deserialize>::from_value(v)
        .map_err(|e| SpecError::new(format!("invalid `cc`: {e}")))
}

fn controller_from_value(v: &Value) -> Result<ControllerSpec, SpecError> {
    if let Value::Str(s) = v {
        return match s.as_str() {
            "none" => Ok(ControllerSpec::None),
            "unlimited" => Ok(ControllerSpec::Unlimited),
            other => Err(SpecError::new(format!(
                "unknown controller `{other}` (want none/unlimited or an object)"
            ))),
        };
    }
    let Some([(tag, payload)]) = v.as_map() else {
        return Err(SpecError::new(
            "controller must be a string or a single-key object",
        ));
    };
    let params = |what: &str| -> Result<Vec<(String, Value)>, SpecError> {
        override_pairs(payload, what)
    };
    Ok(match tag.as_str() {
        "fixed" => {
            let bound = payload
                .get("bound")
                .ok_or_else(|| SpecError::new("`fixed` controller needs `bound`"))?;
            for (key, _) in payload.as_map().unwrap_or(&[]) {
                if key != "bound" {
                    return Err(SpecError::new(format!("unknown `fixed` field `{key}`")));
                }
            }
            ControllerSpec::Fixed {
                bound: u32_from(bound, "fixed.bound")?,
            }
        }
        "fixed_analytic_optimum" => {
            // Present-but-mistyped optional fields must error, never
            // silently fall back to the default.
            let at_ms = match payload.get("at_ms") {
                None => 0.0,
                Some(v) => v.as_f64().ok_or_else(|| {
                    SpecError::new("`fixed_analytic_optimum.at_ms` must be numeric")
                })?,
            };
            let n_max = payload
                .get("n_max")
                .ok_or_else(|| SpecError::new("`fixed_analytic_optimum` needs `n_max`"))?;
            for (k, _) in payload.as_map().unwrap_or(&[]) {
                if k != "at_ms" && k != "n_max" {
                    return Err(SpecError::new(format!(
                        "unknown `fixed_analytic_optimum` field `{k}`"
                    )));
                }
            }
            ControllerSpec::FixedAnalyticOptimum {
                at_ms,
                n_max: u32_from(n_max, "fixed_analytic_optimum.n_max")?,
            }
        }
        "is" => ControllerSpec::Is(crate::value_util::from_overrides(
            &params("IS controller")?,
            "IS controller",
        )?),
        "pa" => ControllerSpec::Pa(crate::value_util::from_overrides(
            &params("PA controller")?,
            "PA controller",
        )?),
        "self_tuning_is" => {
            let mut is = IsParams::default();
            let mut outer = OuterParams::default();
            for (k, val) in payload.as_map().unwrap_or(&[]) {
                match k.as_str() {
                    "is" => {
                        is = crate::value_util::from_overrides(
                            &override_pairs(val, "self_tuning_is.is")?,
                            "self_tuning_is.is",
                        )?;
                    }
                    "outer" => {
                        outer = crate::value_util::from_overrides(
                            &override_pairs(val, "self_tuning_is.outer")?,
                            "self_tuning_is.outer",
                        )?;
                    }
                    other => {
                        return Err(SpecError::new(format!(
                            "unknown `self_tuning_is` field `{other}`"
                        )));
                    }
                }
            }
            // Mirror the constructor's invariants as spec errors so a bad
            // spec fails at compile time, not as a runner panic.
            if outer.window < 2
                || outer.target_step_fraction <= 0.0
                || outer.adjust_factor <= 1.0
                || outer.beta_min <= 0.0
                || outer.beta_min > outer.beta_max
            {
                return Err(SpecError::new("invalid `self_tuning_is.outer` parameters"));
            }
            ControllerSpec::SelfTuningIs { is, outer }
        }
        "self_tuning_pa" => {
            let mut pa = PaParams::default();
            let mut outer = PaOuterParams::default();
            for (k, val) in payload.as_map().unwrap_or(&[]) {
                match k.as_str() {
                    "pa" => {
                        pa = crate::value_util::from_overrides(
                            &override_pairs(val, "self_tuning_pa.pa")?,
                            "self_tuning_pa.pa",
                        )?;
                    }
                    "outer" => {
                        outer = crate::value_util::from_overrides(
                            &override_pairs(val, "self_tuning_pa.outer")?,
                            "self_tuning_pa.outer",
                        )?;
                    }
                    other => {
                        return Err(SpecError::new(format!(
                            "unknown `self_tuning_pa` field `{other}`"
                        )));
                    }
                }
            }
            if outer.window < 2
                || outer.fast_weight <= outer.slow_weight
                || outer.slow_weight <= 0.0
                || outer.fast_weight > 1.0
                || outer.shock_factor <= 1.0
                || outer.shock_confirm < 1
                || outer.lengthen_below <= 0.0
                || outer.lengthen_below >= 1.0
                || outer.adjust_factor <= 1.0
                || outer.alpha_min <= 0.0
                || outer.alpha_min > outer.alpha_max
                || outer.alpha_max >= 1.0
            {
                return Err(SpecError::new("invalid `self_tuning_pa.outer` parameters"));
            }
            ControllerSpec::SelfTuningPa { pa, outer }
        }
        "hybrid" => {
            let mut p = HybridParams::default();
            for (k, val) in payload.as_map().unwrap_or(&[]) {
                match k.as_str() {
                    "is" => {
                        p.is = crate::value_util::from_overrides(
                            &override_pairs(val, "hybrid.is")?,
                            "hybrid.is",
                        )?;
                    }
                    "pa" => {
                        p.pa = crate::value_util::from_overrides(
                            &override_pairs(val, "hybrid.pa")?,
                            "hybrid.pa",
                        )?;
                    }
                    "bootstrap_samples" => {
                        p.bootstrap_samples = val.as_u64().ok_or_else(|| {
                            SpecError::new("`hybrid.bootstrap_samples` must be an integer")
                        })?;
                    }
                    "revert_after" => {
                        p.revert_after = u32_from(val, "hybrid.revert_after")?;
                    }
                    "revert_window" => {
                        p.revert_window = u32_from(val, "hybrid.revert_window")?;
                    }
                    other => {
                        return Err(SpecError::new(format!("unknown `hybrid` field `{other}`")));
                    }
                }
            }
            if (p.is.min_bound, p.is.max_bound) != (p.pa.min_bound, p.pa.max_bound) {
                return Err(SpecError::new(
                    "`hybrid` needs matching IS/PA [min_bound, max_bound] ranges",
                ));
            }
            if p.bootstrap_samples < 3
                || p.revert_after < 1
                || !(p.revert_after..=64).contains(&p.revert_window)
            {
                return Err(SpecError::new("invalid `hybrid` phase parameters"));
            }
            ControllerSpec::Hybrid(p)
        }
        "iyer" => ControllerSpec::Iyer(crate::value_util::from_overrides(
            &params("Iyer controller")?,
            "Iyer controller",
        )?),
        "retry_budget" => {
            let p: RetryBudgetParams = crate::value_util::from_overrides(
                &params("retry_budget controller")?,
                "retry_budget controller",
            )?;
            // Mirror the constructor's invariants as spec errors so a bad
            // spec fails at parse time, not as a runner panic.
            if p.min_bound < 1
                || p.min_bound > p.max_bound
                || p.budget < 0.0
                || p.burst < 0.0
                || !(p.decrease > 0.0 && p.decrease < 1.0)
                || !(0.0..=1.0).contains(&p.headroom)
            {
                return Err(SpecError::new("invalid `retry_budget` parameters"));
            }
            ControllerSpec::RetryBudget(p)
        }
        "tay" => {
            let k = payload
                .get("k")
                .ok_or_else(|| SpecError::new("`tay` controller needs `k`"))?;
            let min_bound = match payload.get("min_bound") {
                None => 1,
                Some(v) => u32_from(v, "tay.min_bound")?,
            };
            let max_bound = payload
                .get("max_bound")
                .ok_or_else(|| SpecError::new("`tay` controller needs `max_bound`"))?;
            for (key, _) in payload.as_map().unwrap_or(&[]) {
                if !matches!(key.as_str(), "k" | "min_bound" | "max_bound") {
                    return Err(SpecError::new(format!("unknown `tay` field `{key}`")));
                }
            }
            ControllerSpec::Tay {
                k: u32_from(k, "tay.k")?,
                min_bound,
                max_bound: u32_from(max_bound, "tay.max_bound")?,
            }
        }
        other => {
            return Err(SpecError::new(format!("unknown controller kind `{other}`")));
        }
    })
}

/// Parses a positive finite number field.
fn positive_f64(v: &Value, what: &str) -> Result<f64, SpecError> {
    v.as_f64()
        .filter(|x| *x > 0.0 && x.is_finite())
        .ok_or_else(|| SpecError::new(format!("`{what}` must be a positive number")))
}

/// Parses the policy object of an adaptive `cc` section.
fn meta_policy_from_value(v: &Value) -> Result<MetaPolicySpec, SpecError> {
    let Some([(tag, payload)]) = v.as_map() else {
        return Err(SpecError::new(
            "`cc.adaptive.policy` must be a single-key object \
             (conflict_threshold/restart_rate/shadow_score)",
        ));
    };
    let mut threshold = None;
    let mut ewma_weight = 0.3;
    for (k, val) in payload.as_map().unwrap_or(&[]) {
        match k.as_str() {
            "threshold" if tag != "shadow_score" => {
                threshold = Some(positive_f64(val, &format!("{tag}.threshold"))?);
            }
            "ewma_weight" => {
                ewma_weight = val
                    .as_f64()
                    .filter(|w| *w > 0.0 && *w <= 1.0)
                    .ok_or_else(|| {
                        SpecError::new(format!("`{tag}.ewma_weight` must lie in (0, 1]"))
                    })?;
            }
            other => {
                return Err(SpecError::new(format!("unknown `{tag}` field `{other}`")));
            }
        }
    }
    Ok(match tag.as_str() {
        "conflict_threshold" => MetaPolicySpec::ConflictThreshold {
            threshold: threshold
                .ok_or_else(|| SpecError::new("`conflict_threshold` needs `threshold`"))?,
            ewma_weight,
        },
        "restart_rate" => {
            let threshold =
                threshold.ok_or_else(|| SpecError::new("`restart_rate` needs `threshold`"))?;
            if threshold >= 1.0 {
                return Err(SpecError::new(
                    "`restart_rate.threshold` is an abort ratio and must be < 1",
                ));
            }
            MetaPolicySpec::RestartRate {
                threshold,
                ewma_weight,
            }
        }
        "shadow_score" => MetaPolicySpec::ShadowScore { ewma_weight },
        other => {
            return Err(SpecError::new(format!(
                "unknown adaptive policy `{other}` \
                 (want conflict_threshold/restart_rate/shadow_score)"
            )));
        }
    })
}

/// Parses the `{"adaptive": …}` payload of the `cc` field.
fn adaptive_from_value(v: &Value) -> Result<AdaptiveCcSpec, SpecError> {
    let entries = v
        .as_map()
        .ok_or_else(|| SpecError::new("`cc.adaptive` must be an object"))?;
    let mut candidates = Vec::new();
    let mut policy = None;
    let mut min_dwell_s = None;
    let mut cooldown_s = 0.0;
    let mut hysteresis = 0.25;
    for (k, val) in entries {
        match k.as_str() {
            "candidates" => {
                let seq = val
                    .as_seq()
                    .ok_or_else(|| SpecError::new("`cc.adaptive.candidates` must be a list"))?;
                candidates = seq
                    .iter()
                    .map(cc_from_value)
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "policy" => policy = Some(meta_policy_from_value(val)?),
            "min_dwell_s" => {
                min_dwell_s = Some(val.as_f64().filter(|x| *x >= 0.0 && x.is_finite()).ok_or_else(
                    || SpecError::new("`cc.adaptive.min_dwell_s` must be a number ≥ 0"),
                )?);
            }
            "cooldown_s" => {
                cooldown_s = val
                    .as_f64()
                    .filter(|x| *x >= 0.0 && x.is_finite())
                    .ok_or_else(|| {
                        SpecError::new("`cc.adaptive.cooldown_s` must be a number ≥ 0")
                    })?;
            }
            "hysteresis" => {
                hysteresis = val
                    .as_f64()
                    .filter(|x| (0.0..1.0).contains(x))
                    .ok_or_else(|| {
                        SpecError::new("`cc.adaptive.hysteresis` must lie in [0, 1)")
                    })?;
            }
            other => {
                return Err(SpecError::new(format!(
                    "unknown `cc.adaptive` field `{other}`"
                )));
            }
        }
    }
    if candidates.len() < 2 {
        return Err(SpecError::new(
            "`cc.adaptive.candidates` needs at least two protocols",
        ));
    }
    let mut seen = Vec::new();
    for c in &candidates {
        if seen.contains(c) {
            return Err(SpecError::new(format!(
                "duplicate adaptive candidate `{}`",
                cc_spec_name(*c)
            )));
        }
        seen.push(*c);
    }
    Ok(AdaptiveCcSpec {
        candidates,
        policy: policy.ok_or_else(|| SpecError::new("`cc.adaptive` needs a `policy`"))?,
        min_dwell_s: min_dwell_s
            .ok_or_else(|| SpecError::new("`cc.adaptive` needs `min_dwell_s`"))?,
        cooldown_s,
        hysteresis,
    })
}

/// The parsed `cc` field: initial protocol, scheduled phase switches,
/// and the adaptive section (at most one of the latter two is
/// populated).
type CcField = (CcKind, Vec<(f64, CcKind)>, Option<AdaptiveCcSpec>);

/// Parses the `cc` field: a plain protocol,
/// `{"phases": [[t_ms, cc], …]}` (ascending, first phase at 0) for
/// scheduled per-phase switching, or `{"adaptive": …}` for closed-loop
/// protocol selection.
fn cc_field_from_value(v: &Value) -> Result<CcField, SpecError> {
    if let Some([(tag, payload)]) = v.as_map() {
        if tag == "adaptive" {
            let adaptive = adaptive_from_value(payload)?;
            return Ok((adaptive.candidates[0], Vec::new(), Some(adaptive)));
        }
        if tag == "phases" {
            let seq = payload
                .as_seq()
                .ok_or_else(|| SpecError::new("`cc.phases` needs a [[t_ms, cc], …] list"))?;
            let mut phases = Vec::with_capacity(seq.len());
            for p in seq {
                let pair = p.as_seq().filter(|s| s.len() == 2).ok_or_else(|| {
                    SpecError::new("`cc.phases` entries must be [t_ms, cc] pairs")
                })?;
                let t = pair[0]
                    .as_f64()
                    .ok_or_else(|| SpecError::new("`cc.phases` time must be numeric"))?;
                phases.push((t, cc_from_value(&pair[1])?));
            }
            if phases.is_empty() {
                return Err(SpecError::new("`cc.phases` must not be empty"));
            }
            if phases[0].0 != 0.0 {
                return Err(SpecError::new("the first `cc.phases` entry must start at 0"));
            }
            for w in phases.windows(2) {
                if w[1].0 <= w[0].0 {
                    return Err(SpecError::new("`cc.phases` times must be strictly ascending"));
                }
            }
            let initial = phases[0].1;
            return Ok((initial, phases.split_off(1), None));
        }
    }
    Ok((cc_from_value(v)?, Vec::new(), None))
}

fn fault_from_value(v: &Value) -> Result<FaultSpec, SpecError> {
    use alc_des::dist::Sample as _;
    let entries = v
        .as_map()
        .ok_or_else(|| SpecError::new("fault must be an object"))?;
    let mut at_ms = None;
    let mut recovery = None;
    let mut cpus_down = None;
    for (k, val) in entries {
        match k.as_str() {
            "at" => {
                at_ms = Some(
                    val.as_f64()
                        .filter(|&t| t >= 0.0)
                        .ok_or_else(|| SpecError::new("fault `at` must be a time ≥ 0"))?,
                );
            }
            "duration" => {
                if recovery.is_some() {
                    return Err(SpecError::new(
                        "fault takes `duration` or `repair`, not both",
                    ));
                }
                recovery = Some(FaultRecovery::Fixed(
                    val.as_f64()
                        .filter(|&d| d > 0.0)
                        .ok_or_else(|| SpecError::new("fault `duration` must be positive"))?,
                ));
            }
            "repair" => {
                if recovery.is_some() {
                    return Err(SpecError::new(
                        "fault takes `duration` or `repair`, not both",
                    ));
                }
                let norm = crate::value_util::normalize_dist(val)
                    .map_err(|e| SpecError::new(format!("fault `repair`: {e}")))?;
                let dist: alc_des::dist::Dist =
                    <alc_des::dist::Dist as serde::Deserialize>::from_value(&norm)
                        .map_err(|e| SpecError::new(format!("fault `repair`: {e}")))?;
                if dist.mean().is_nan() || dist.mean() <= 0.0 {
                    return Err(SpecError::new(
                        "fault `repair` needs a distribution with positive mean",
                    ));
                }
                recovery = Some(FaultRecovery::Repair(dist));
            }
            "cpus_down" => {
                let n = u32_from(val, "fault cpus_down")?;
                if n == 0 {
                    return Err(SpecError::new("fault `cpus_down` must be ≥ 1"));
                }
                cpus_down = Some(n);
            }
            other => {
                return Err(SpecError::new(format!("unknown fault field `{other}`")));
            }
        }
    }
    Ok(FaultSpec {
        at_ms: at_ms.ok_or_else(|| SpecError::new("fault needs `at`"))?,
        recovery: recovery
            .ok_or_else(|| SpecError::new("fault needs `duration` or `repair`"))?,
        cpus_down: cpus_down.ok_or_else(|| SpecError::new("fault needs `cpus_down`"))?,
    })
}

/// Parses the retry policy of a `clients` section: a single-key object
/// `{"backoff": …}` / `{"budget": …}` / `{"hedged": …}`.
fn retry_policy_from_value(v: &Value) -> Result<RetryPolicy, SpecError> {
    let Some([(tag, payload)]) = v.as_map() else {
        return Err(SpecError::new(
            "`clients.retry` must be a single-key object (backoff/budget/hedged)",
        ));
    };
    Ok(match tag.as_str() {
        "backoff" => {
            // The default retry policy is backoff; the fallback arm only
            // exists to keep this parser panic-free.
            let (mut base_ms, mut factor, mut max_ms, mut jitter) = match RetryPolicy::default() {
                RetryPolicy::Backoff {
                    base_ms,
                    factor,
                    max_ms,
                    jitter,
                } => (base_ms, factor, max_ms, jitter),
                _ => (100.0, 2.0, 5000.0, 0.5),
            };
            for (k, val) in payload.as_map().unwrap_or(&[]) {
                match k.as_str() {
                    "base_ms" => base_ms = positive_f64(val, "backoff.base_ms")?,
                    "factor" => {
                        factor = val.as_f64().filter(|f| *f >= 1.0).ok_or_else(|| {
                            SpecError::new("`backoff.factor` must be a number ≥ 1")
                        })?;
                    }
                    "max_ms" => max_ms = positive_f64(val, "backoff.max_ms")?,
                    "jitter" => {
                        jitter = val
                            .as_f64()
                            .filter(|j| (0.0..=1.0).contains(j))
                            .ok_or_else(|| {
                                SpecError::new("`backoff.jitter` must lie in [0, 1]")
                            })?;
                    }
                    other => {
                        return Err(SpecError::new(format!(
                            "unknown `backoff` field `{other}`"
                        )));
                    }
                }
            }
            RetryPolicy::Backoff {
                base_ms,
                factor,
                max_ms,
                jitter,
            }
        }
        "budget" => {
            let mut per_commit = 0.1;
            let mut burst = 10.0;
            let mut delay_ms = 100.0;
            for (k, val) in payload.as_map().unwrap_or(&[]) {
                match k.as_str() {
                    "per_commit" => {
                        per_commit = val
                            .as_f64()
                            .filter(|x| *x >= 0.0 && x.is_finite())
                            .ok_or_else(|| {
                                SpecError::new("`budget.per_commit` must be a number ≥ 0")
                            })?;
                    }
                    "burst" => burst = positive_f64(val, "budget.burst")?,
                    "delay_ms" => delay_ms = positive_f64(val, "budget.delay_ms")?,
                    other => {
                        return Err(SpecError::new(format!(
                            "unknown `budget` field `{other}`"
                        )));
                    }
                }
            }
            RetryPolicy::Budget {
                per_commit,
                burst,
                delay_ms,
            }
        }
        "hedged" => {
            let mut delay_ms = None;
            for (k, val) in payload.as_map().unwrap_or(&[]) {
                match k.as_str() {
                    "delay_ms" => delay_ms = Some(positive_f64(val, "hedged.delay_ms")?),
                    other => {
                        return Err(SpecError::new(format!(
                            "unknown `hedged` field `{other}`"
                        )));
                    }
                }
            }
            RetryPolicy::Hedged {
                delay_ms: delay_ms
                    .ok_or_else(|| SpecError::new("`hedged` retry needs `delay_ms`"))?,
            }
        }
        other => {
            return Err(SpecError::new(format!(
                "unknown retry policy `{other}` (want backoff/budget/hedged)"
            )));
        }
    })
}

/// Parses the latency→load feedback of a `clients` section.
fn feedback_from_value(v: &Value) -> Result<LatencyFeedback, SpecError> {
    let entries = v
        .as_map()
        .ok_or_else(|| SpecError::new("`clients.feedback` must be an object"))?;
    let mut f = LatencyFeedback::default();
    for (k, val) in entries {
        match k.as_str() {
            "gain" => {
                f.gain = val
                    .as_f64()
                    .filter(|g| *g >= 0.0 && g.is_finite())
                    .ok_or_else(|| SpecError::new("`feedback.gain` must be a number ≥ 0"))?;
            }
            "reference_ms" => f.reference_ms = positive_f64(val, "feedback.reference_ms")?,
            "weight" => {
                f.weight = val
                    .as_f64()
                    .filter(|w| *w > 0.0 && *w <= 1.0)
                    .ok_or_else(|| SpecError::new("`feedback.weight` must lie in (0, 1]"))?;
            }
            other => {
                return Err(SpecError::new(format!("unknown `feedback` field `{other}`")));
            }
        }
    }
    Ok(f)
}

/// Parses the `clients` section into the engine's [`ClientConfig`].
fn clients_from_value(v: &Value) -> Result<ClientConfig, SpecError> {
    use alc_des::dist::Sample as _;
    let entries = v
        .as_map()
        .ok_or_else(|| SpecError::new("`clients` must be an object"))?;
    let mut population = None;
    let mut timeout = None;
    let mut max_retries = 3u32;
    let mut retry = RetryPolicy::default();
    let mut shed_retries = false;
    let mut feedback = LatencyFeedback::default();
    for (k, val) in entries {
        match k.as_str() {
            "population" => {
                let n = u32_from(val, "clients.population")?;
                if n == 0 {
                    return Err(SpecError::new("`clients.population` must be ≥ 1"));
                }
                population = Some(n);
            }
            "timeout" => {
                let norm = crate::value_util::normalize_dist(val)
                    .map_err(|e| SpecError::new(format!("clients `timeout`: {e}")))?;
                let dist: alc_des::dist::Dist =
                    <alc_des::dist::Dist as serde::Deserialize>::from_value(&norm)
                        .map_err(|e| SpecError::new(format!("clients `timeout`: {e}")))?;
                if dist.mean().is_nan() || dist.mean() <= 0.0 {
                    return Err(SpecError::new(
                        "clients `timeout` needs a distribution with positive mean",
                    ));
                }
                timeout = Some(dist);
            }
            "max_retries" => max_retries = u32_from(val, "clients.max_retries")?,
            "retry" => retry = retry_policy_from_value(val)?,
            "shed_retries" => match val {
                Value::Bool(b) => shed_retries = *b,
                _ => return Err(SpecError::new("`clients.shed_retries` must be a bool")),
            },
            "feedback" => feedback = feedback_from_value(val)?,
            other => {
                return Err(SpecError::new(format!("unknown `clients` field `{other}`")));
            }
        }
    }
    Ok(ClientConfig {
        population: population
            .ok_or_else(|| SpecError::new("`clients` needs `population`"))?,
        timeout: timeout.ok_or_else(|| SpecError::new("`clients` needs `timeout`"))?,
        max_retries,
        retry,
        shed_retries,
        feedback,
    })
}

/// Serializes a [`ClientConfig`] back into the spec's `clients` form.
fn clients_to_value(c: &ClientConfig) -> Value {
    let retry = match c.retry {
        RetryPolicy::Backoff {
            base_ms,
            factor,
            max_ms,
            jitter,
        } => Value::Map(vec![(
            "backoff".into(),
            Value::Map(vec![
                ("base_ms".into(), Value::Num(base_ms)),
                ("factor".into(), Value::Num(factor)),
                ("max_ms".into(), Value::Num(max_ms)),
                ("jitter".into(), Value::Num(jitter)),
            ]),
        )]),
        RetryPolicy::Budget {
            per_commit,
            burst,
            delay_ms,
        } => Value::Map(vec![(
            "budget".into(),
            Value::Map(vec![
                ("per_commit".into(), Value::Num(per_commit)),
                ("burst".into(), Value::Num(burst)),
                ("delay_ms".into(), Value::Num(delay_ms)),
            ]),
        )]),
        RetryPolicy::Hedged { delay_ms } => Value::Map(vec![(
            "hedged".into(),
            Value::Map(vec![("delay_ms".into(), Value::Num(delay_ms))]),
        )]),
    };
    Value::Map(vec![
        ("population".into(), Value::U64(u64::from(c.population))),
        ("timeout".into(), serde::Serialize::to_value(&c.timeout)),
        ("max_retries".into(), Value::U64(u64::from(c.max_retries))),
        ("retry".into(), retry),
        ("shed_retries".into(), Value::Bool(c.shed_retries)),
        (
            "feedback".into(),
            Value::Map(vec![
                ("gain".into(), Value::Num(c.feedback.gain)),
                ("reference_ms".into(), Value::Num(c.feedback.reference_ms)),
                ("weight".into(), Value::Num(c.feedback.weight)),
            ]),
        ),
    ])
}

/// Characters legal in labels that land in output file names.
fn filename_safe(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

fn sweep_axis_from_value(v: &Value) -> Result<SweepAxis, SpecError> {
    let entries = v
        .as_map()
        .ok_or_else(|| SpecError::new("sweep axis must be an object"))?;
    let mut header = None;
    let mut path = None;
    let mut values = None;
    let mut labels = None;
    for (k, val) in entries {
        match k.as_str() {
            "header" => match val {
                Value::Str(s) if !s.is_empty() => header = Some(s.clone()),
                _ => return Err(SpecError::new("axis `header` must be a non-empty string")),
            },
            "path" => match val {
                Value::Str(s) if !s.is_empty() => path = Some(s.clone()),
                _ => return Err(SpecError::new("axis `path` must be a non-empty string")),
            },
            "values" => {
                let seq = val
                    .as_seq()
                    .ok_or_else(|| SpecError::new("axis `values` must be a list"))?;
                if seq.is_empty() {
                    return Err(SpecError::new("axis `values` must not be empty"));
                }
                values = Some(seq.to_vec());
            }
            "labels" => {
                let seq = val
                    .as_seq()
                    .ok_or_else(|| SpecError::new("axis `labels` must be a list"))?;
                let mut out = Vec::with_capacity(seq.len());
                for l in seq {
                    match l {
                        Value::Str(s) => out.push(s.clone()),
                        _ => return Err(SpecError::new("axis `labels` must be strings")),
                    }
                }
                labels = Some(out);
            }
            other => {
                return Err(SpecError::new(format!("unknown axis field `{other}`")));
            }
        }
    }
    let axis = SweepAxis {
        header: header.ok_or_else(|| SpecError::new("sweep axis needs `header`"))?,
        path: path.ok_or_else(|| SpecError::new("sweep axis needs `path`"))?,
        values: values.ok_or_else(|| SpecError::new("sweep axis needs `values`"))?,
        labels,
    };
    if let Some(labels) = &axis.labels {
        if labels.len() != axis.values.len() {
            return Err(SpecError::new(format!(
                "axis `{}`: {} labels for {} values",
                axis.header,
                labels.len(),
                axis.values.len()
            )));
        }
    }
    // Labels name output files and must identify cells uniquely: a
    // duplicate label would collapse two grid cells in the report.
    let mut seen = std::collections::BTreeSet::new();
    for i in 0..axis.values.len() {
        let label = axis.label(i);
        if !filename_safe(&label) {
            return Err(SpecError::new(format!(
                "axis `{}` label `{label}` must be non-empty [A-Za-z0-9._-] \
                 (give explicit `labels` for exotic values)",
                axis.header
            )));
        }
        if !seen.insert(label.clone()) {
            return Err(SpecError::new(format!(
                "axis `{}` has duplicate label `{label}`",
                axis.header
            )));
        }
    }
    Ok(axis)
}

fn sweep_from_value(v: &Value) -> Result<SweepSpec, SpecError> {
    let entries = v
        .as_map()
        .ok_or_else(|| SpecError::new("`sweep` must be an object"))?;
    let mut axes = Vec::new();
    let mut pivot = None;
    for (k, val) in entries {
        match k.as_str() {
            "axes" => {
                let seq = val
                    .as_seq()
                    .ok_or_else(|| SpecError::new("`sweep.axes` must be a list"))?;
                axes = seq
                    .iter()
                    .map(sweep_axis_from_value)
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "pivot" => {
                let stat = match val.get("stat") {
                    Some(Value::Str(s)) => StatColumn::parse(s)?,
                    _ => return Err(SpecError::new("`sweep.pivot` needs a `stat` column name")),
                };
                let prefix = match val.get("prefix") {
                    None => String::new(),
                    Some(Value::Str(s)) => s.clone(),
                    Some(_) => {
                        return Err(SpecError::new("`sweep.pivot.prefix` must be a string"))
                    }
                };
                for (pk, _) in val.as_map().unwrap_or(&[]) {
                    if pk != "stat" && pk != "prefix" {
                        return Err(SpecError::new(format!("unknown pivot field `{pk}`")));
                    }
                }
                pivot = Some(PivotSpec { stat, prefix });
            }
            other => {
                return Err(SpecError::new(format!("unknown sweep field `{other}`")));
            }
        }
    }
    if axes.is_empty() {
        return Err(SpecError::new("`sweep` needs at least one axis"));
    }
    if pivot.is_some() && axes.len() < 2 {
        return Err(SpecError::new(
            "a pivoted sweep needs ≥ 2 axes (rows + the pivoted columns)",
        ));
    }
    let mut headers = std::collections::BTreeSet::new();
    for a in &axes {
        if !headers.insert(a.header.as_str()) {
            return Err(SpecError::new(format!("duplicate axis header `{}`", a.header)));
        }
    }
    Ok(SweepSpec { axes, pivot })
}

fn inputs_from_value(v: &Value) -> Result<VariantInputs, SpecError> {
    let entries = v
        .as_map()
        .ok_or_else(|| SpecError::new("`inputs` must map variant name → cells"))?;
    let mut out = Vec::with_capacity(entries.len());
    for (variant, cells_v) in entries {
        let cells = cells_v
            .as_map()
            .ok_or_else(|| SpecError::new(format!("inputs for `{variant}` must be an object")))?;
        let mut row = Vec::with_capacity(cells.len());
        for (col, val) in cells {
            match val {
                Value::Str(s) => row.push((col.clone(), s.clone())),
                _ => {
                    return Err(SpecError::new(format!(
                        "input `{variant}.{col}` must be a string (the literal cell text)"
                    )));
                }
            }
        }
        out.push((variant.clone(), row));
    }
    Ok(out)
}

fn workload_from_value(v: &Value) -> Result<WorkloadSpec, SpecError> {
    let entries = v
        .as_map()
        .ok_or_else(|| SpecError::new("`workload` must be an object"))?;
    let mut w = WorkloadSpec::default();
    for (k, pv) in entries {
        let p = <Profile as serde::Deserialize>::from_value(pv)
            .map_err(|e| SpecError::new(format!("workload `{k}`: {e}")))?;
        match k.as_str() {
            "k" => w.k = p,
            "query_frac" => w.query_frac = p,
            "write_frac" => w.write_frac = p,
            "access_skew" => w.access_skew = p,
            "arrival_rate_factor" => w.arrival_rate_factor = p,
            "think_time_factor" => w.think_time_factor = p,
            other => {
                return Err(SpecError::new(format!("unknown workload field `{other}`")));
            }
        }
    }
    Ok(w)
}

fn variant_from_value(v: &Value) -> Result<VariantSpec, SpecError> {
    let entries = v
        .as_map()
        .ok_or_else(|| SpecError::new("variant must be an object"))?;
    let mut name = None;
    let mut set = Vec::new();
    let mut quick = Vec::new();
    for (k, val) in entries {
        match k.as_str() {
            "name" => match val {
                Value::Str(s) => name = Some(s.clone()),
                _ => return Err(SpecError::new("variant `name` must be a string")),
            },
            "set" => set = override_pairs(val, "variant set")?,
            "quick" => quick = override_pairs(val, "variant quick")?,
            other => {
                return Err(SpecError::new(format!("unknown variant field `{other}`")));
            }
        }
    }
    Ok(VariantSpec {
        name: name.ok_or_else(|| SpecError::new("variant needs a `name`"))?,
        set,
        quick,
    })
}

/// Normalizes the `system` override map: dist-valued fields accept the
/// shorthands, `arrival` accepts its shorthands, and `seed` is rejected
/// (the top-level `seed` field owns it). `offered_load_per_s` is a
/// *derived* quantity: a value `λ` lowers to an open Poisson arrival
/// stream with interarrival mean `1000/λ` ms at parse time, so load
/// grids (sweep axes, `--set`, quick overrides) read in the paper's
/// tx/s units instead of interarrival means.
fn system_overrides_from_value(v: &Value) -> Result<Vec<(String, Value)>, SpecError> {
    const DIST_FIELDS: [&str; 5] = [
        "cpu_phase",
        "disk_access",
        "disk_init_commit",
        "think",
        "restart_delay",
    ];
    let mut out: Vec<(String, Value)> = Vec::new();
    let mut arrival_sources = 0u32;
    for (k, val) in override_pairs(v, "system")? {
        let (key, norm) = if DIST_FIELDS.contains(&k.as_str()) {
            let norm = normalize_dist(&val)
                .map_err(|e| SpecError::new(format!("system `{k}`: {e}")))?;
            (k, norm)
        } else if k == "arrival" {
            arrival_sources += 1;
            (k, normalize_arrival(&val)?)
        } else if k == "offered_load_per_s" {
            arrival_sources += 1;
            let rate = val.as_f64().filter(|&r| r > 0.0).ok_or_else(|| {
                SpecError::new("`system.offered_load_per_s` must be a positive rate")
            })?;
            let open = Value::Map(vec![("open_rate_per_s".into(), Value::Num(rate))]);
            ("arrival".to_string(), normalize_arrival(&open)?)
        } else if k == "seed" {
            return Err(SpecError::new(
                "set the top-level `seed` field, not `system.seed`",
            ));
        } else {
            (k, val)
        };
        out.push((key, norm));
    }
    if arrival_sources > 1 {
        return Err(SpecError::new(
            "set `system.arrival` or `system.offered_load_per_s`, not both",
        ));
    }
    Ok(out)
}

impl ScenarioSpec {
    /// Strictly parses a spec from its JSON tree. Unknown keys anywhere
    /// are errors.
    pub fn from_value(v: &Value) -> Result<Self, SpecError> {
        let entries = v
            .as_map()
            .ok_or_else(|| SpecError::new("scenario spec must be a JSON object"))?;
        let mut name = None;
        let mut description = String::new();
        let mut seed = SystemConfig::default().seed;
        let mut replications = 1u32;
        let mut horizon_ms = None;
        let mut cc = CcKind::Certification;
        let mut cc_phases = Vec::new();
        let mut cc_adaptive = None;
        let mut faults = Vec::new();
        let mut clients = None;
        let mut system = Vec::new();
        let mut control = Vec::new();
        let mut workload = WorkloadSpec::default();
        let mut controller = ControllerSpec::None;
        let mut record_optimum = false;
        let mut trajectories = false;
        let mut label_header = "variant".to_string();
        let mut columns = default_columns();
        let mut variants = Vec::new();
        let mut sweep = None;
        let mut inputs = Vec::new();
        let mut label_from = None;
        let mut quick = Vec::new();

        for (k, val) in entries {
            match k.as_str() {
                "name" => match val {
                    Value::Str(s) => name = Some(s.clone()),
                    _ => return Err(SpecError::new("`name` must be a string")),
                },
                "description" => match val {
                    Value::Str(s) => description = s.clone(),
                    _ => return Err(SpecError::new("`description` must be a string")),
                },
                "seed" => {
                    seed = val
                        .as_u64()
                        .ok_or_else(|| SpecError::new("`seed` must be a u64"))?;
                }
                "replications" => {
                    replications = u32_from(val, "replications")?;
                    if replications == 0 {
                        return Err(SpecError::new("`replications` must be ≥ 1"));
                    }
                }
                "horizon_ms" => {
                    horizon_ms = Some(
                        val.as_f64()
                            .filter(|&h| h > 0.0)
                            .ok_or_else(|| SpecError::new("`horizon_ms` must be positive"))?,
                    );
                }
                "cc" => (cc, cc_phases, cc_adaptive) = cc_field_from_value(val)?,
                "faults" => {
                    let seq = val
                        .as_seq()
                        .ok_or_else(|| SpecError::new("`faults` must be a list"))?;
                    faults = seq
                        .iter()
                        .map(fault_from_value)
                        .collect::<Result<_, _>>()?;
                }
                "clients" => clients = Some(clients_from_value(val)?),
                "system" => system = system_overrides_from_value(val)?,
                "control" => control = override_pairs(val, "control")?,
                "workload" => workload = workload_from_value(val)?,
                "controller" => controller = controller_from_value(val)?,
                "record_optimum" => match val {
                    Value::Bool(b) => record_optimum = *b,
                    _ => return Err(SpecError::new("`record_optimum` must be a bool")),
                },
                "trajectories" => match val {
                    Value::Bool(b) => trajectories = *b,
                    _ => return Err(SpecError::new("`trajectories` must be a bool")),
                },
                "label_header" => match val {
                    Value::Str(s) => label_header = s.clone(),
                    _ => return Err(SpecError::new("`label_header` must be a string")),
                },
                "columns" => {
                    let seq = val
                        .as_seq()
                        .ok_or_else(|| SpecError::new("`columns` must be a list"))?;
                    columns = seq
                        .iter()
                        .map(column_from_value)
                        .collect::<Result<_, _>>()?;
                }
                "variants" => {
                    let seq = val
                        .as_seq()
                        .ok_or_else(|| SpecError::new("`variants` must be a list"))?;
                    variants = seq
                        .iter()
                        .map(variant_from_value)
                        .collect::<Result<_, _>>()?;
                }
                "sweep" => sweep = Some(sweep_from_value(val)?),
                "inputs" => inputs = inputs_from_value(val)?,
                "label_from" => match val {
                    Value::Str(s) if !s.is_empty() => label_from = Some(s.clone()),
                    _ => {
                        return Err(SpecError::new("`label_from` must be a non-empty string"));
                    }
                },
                "quick" => quick = override_pairs(val, "quick")?,
                other => {
                    return Err(SpecError::new(format!("unknown spec field `{other}`")));
                }
            }
        }
        let spec = ScenarioSpec {
            name: name.ok_or_else(|| SpecError::new("spec needs a `name`"))?,
            description,
            seed,
            replications,
            horizon_ms: horizon_ms
                .ok_or_else(|| SpecError::new("spec needs a positive `horizon_ms`"))?,
            cc,
            cc_phases,
            cc_adaptive,
            faults,
            clients,
            system,
            control,
            workload,
            controller,
            record_optimum,
            trajectories,
            label_header,
            columns,
            variants,
            sweep,
            inputs,
            label_from,
            quick,
        };
        if spec.name.is_empty()
            || !spec
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(SpecError::new(
                "`name` must be non-empty [A-Za-z0-9_-] (it names output files)",
            ));
        }
        let mut seen = std::collections::BTreeSet::new();
        for v in &spec.variants {
            if !seen.insert(v.name.as_str()) {
                return Err(SpecError::new(format!("duplicate variant `{}`", v.name)));
            }
            // Variant names land in trajectory file names, so they get
            // the same charset discipline as the spec name (plus `.`,
            // for labels like `iyer-0.75`).
            if v.name.is_empty()
                || !v
                    .name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
            {
                return Err(SpecError::new(format!(
                    "variant name `{}` must be non-empty [A-Za-z0-9._-] (it names output files)",
                    v.name
                )));
            }
        }
        if let Some(sweep) = &spec.sweep {
            if !spec.variants.is_empty() {
                return Err(SpecError::new(
                    "`sweep` and `variants` are mutually exclusive (a sweep already \
                     generates one run per grid cell)",
                ));
            }
            if !spec.inputs.is_empty() || spec.label_from.is_some() {
                return Err(SpecError::new(
                    "`inputs`/`label_from` key variants and cannot be used with `sweep` \
                     (axis values already label the rows)",
                ));
            }
            if sweep.pivot.is_some() && spec.replications > 1 {
                return Err(SpecError::new(
                    "a pivoted sweep needs `replications: 1` (one cell, one value)",
                ));
            }
        }
        // Every input row must key a real variant, and every column that
        // reads an input cell must find it in every variant.
        let variant_names: Vec<&str> = spec.variants.iter().map(|v| v.name.as_str()).collect();
        for (variant, _) in &spec.inputs {
            if !variant_names.contains(&variant.as_str()) {
                return Err(SpecError::new(format!(
                    "`inputs` references unknown variant `{variant}`"
                )));
            }
        }
        let mut needed_cells: Vec<&str> = spec
            .columns
            .iter()
            .filter_map(|c| match c {
                ColumnSpec::Input(name) => Some(name.as_str()),
                _ => None,
            })
            .collect();
        if let Some(lf) = &spec.label_from {
            needed_cells.push(lf.as_str());
        }
        if !needed_cells.is_empty() {
            // `input` columns and `label_from` read per-variant cells;
            // without variants they could never be satisfied and would
            // silently render placeholders.
            if spec.variants.is_empty() {
                return Err(SpecError::new(
                    "`input` columns / `label_from` need a `variants` section \
                     (they read per-variant cells from `inputs`)",
                ));
            }
            for v in &spec.variants {
                let cells = spec
                    .inputs
                    .iter()
                    .find(|(name, _)| name == &v.name)
                    .map(|(_, cells)| cells.as_slice())
                    .unwrap_or(&[]);
                for needed in &needed_cells {
                    if !cells.iter().any(|(col, _)| col == needed) {
                        return Err(SpecError::new(format!(
                            "variant `{}` is missing input cell `{needed}`",
                            v.name
                        )));
                    }
                }
            }
        }
        if spec.columns.iter().any(ColumnSpec::needs_optimum) && !spec.record_optimum {
            return Err(SpecError::new(
                "tracking-error columns need `record_optimum: true` (they compare the \
                 bound against the analytic optimum trajectory)",
            ));
        }
        if spec.clients.is_none()
            && spec
                .columns
                .iter()
                .any(|c| matches!(c, ColumnSpec::Client(_)))
        {
            return Err(SpecError::new(
                "client columns (goodput_per_s, retry_amplification, …) need a \
                 `clients` section",
            ));
        }
        // Eagerly dry-run the override merges so a typo'd system/control
        // key fails at parse time, not only at compile time.
        let _: SystemConfig = crate::value_util::from_overrides(&spec.system, "system")?;
        let _: alc_tpsim::config::ControlConfig =
            crate::value_util::from_overrides(&spec.control, "control")?;
        // Statically resolve every stored override path (variant
        // set/quick, spec quick, sweep axes) against the schema, so a
        // dead path dies at `scenario validate` time — even the quick
        // paths a full-scale compile would never apply.
        crate::validate::check_override_paths(&spec)?;
        Ok(spec)
    }
}

impl serde::Serialize for ScenarioSpec {
    fn to_value(&self) -> Value {
        let pairs_value =
            |pairs: &[(String, Value)]| Value::Map(pairs.to_vec());
        let cc_value = if let Some(ad) = &self.cc_adaptive {
            Value::Map(vec![("adaptive".into(), ad.to_value())])
        } else if self.cc_phases.is_empty() {
            self.cc.to_value()
        } else {
            let mut phases = vec![Value::Seq(vec![Value::Num(0.0), self.cc.to_value()])];
            phases.extend(
                self.cc_phases
                    .iter()
                    .map(|(t, c)| Value::Seq(vec![Value::Num(*t), c.to_value()])),
            );
            Value::Map(vec![("phases".into(), Value::Seq(phases))])
        };
        let mut m: Vec<(String, Value)> = vec![
            ("name".into(), Value::Str(self.name.clone())),
            ("description".into(), Value::Str(self.description.clone())),
            ("seed".into(), Value::U64(self.seed)),
            ("replications".into(), Value::U64(u64::from(self.replications))),
            ("horizon_ms".into(), Value::Num(self.horizon_ms)),
            ("cc".into(), cc_value),
            ("system".into(), pairs_value(&self.system)),
            ("control".into(), pairs_value(&self.control)),
            ("workload".into(), self.workload.to_value()),
            ("controller".into(), self.controller.to_value()),
            ("record_optimum".into(), Value::Bool(self.record_optimum)),
            ("trajectories".into(), Value::Bool(self.trajectories)),
            ("label_header".into(), Value::Str(self.label_header.clone())),
            (
                "columns".into(),
                Value::Seq(self.columns.iter().map(|c| c.to_value()).collect()),
            ),
        ];
        if !self.faults.is_empty() {
            m.push((
                "faults".into(),
                Value::Seq(
                    self.faults
                        .iter()
                        .map(|f| {
                            let recovery = match &f.recovery {
                                FaultRecovery::Fixed(d) => ("duration".into(), Value::Num(*d)),
                                FaultRecovery::Repair(dist) => ("repair".into(), dist.to_value()),
                            };
                            Value::Map(vec![
                                ("at".into(), Value::Num(f.at_ms)),
                                recovery,
                                ("cpus_down".into(), Value::U64(u64::from(f.cpus_down))),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if let Some(c) = &self.clients {
            m.push(("clients".into(), clients_to_value(c)));
        }
        if !self.variants.is_empty() {
            m.push((
                "variants".into(),
                Value::Seq(self.variants.iter().map(|v| v.to_value()).collect()),
            ));
        }
        if let Some(sweep) = &self.sweep {
            let axes = Value::Seq(
                sweep
                    .axes
                    .iter()
                    .map(|a| {
                        let mut am = vec![
                            ("header".to_string(), Value::Str(a.header.clone())),
                            ("path".to_string(), Value::Str(a.path.clone())),
                            ("values".to_string(), Value::Seq(a.values.clone())),
                        ];
                        if let Some(labels) = &a.labels {
                            am.push((
                                "labels".to_string(),
                                Value::Seq(
                                    labels.iter().map(|l| Value::Str(l.clone())).collect(),
                                ),
                            ));
                        }
                        Value::Map(am)
                    })
                    .collect(),
            );
            let mut sm = vec![("axes".to_string(), axes)];
            if let Some(p) = &sweep.pivot {
                sm.push((
                    "pivot".to_string(),
                    Value::Map(vec![
                        ("stat".into(), Value::Str(p.stat.name().to_string())),
                        ("prefix".into(), Value::Str(p.prefix.clone())),
                    ]),
                ));
            }
            m.push(("sweep".into(), Value::Map(sm)));
        }
        if !self.inputs.is_empty() {
            m.push((
                "inputs".into(),
                Value::Map(
                    self.inputs
                        .iter()
                        .map(|(variant, cells)| {
                            (
                                variant.clone(),
                                Value::Map(
                                    cells
                                        .iter()
                                        .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                                        .collect(),
                                ),
                            )
                        })
                        .collect(),
                ),
            ));
        }
        if let Some(lf) = &self.label_from {
            m.push(("label_from".into(), Value::Str(lf.clone())));
        }
        if !self.quick.is_empty() {
            m.push(("quick".into(), pairs_value(&self.quick)));
        }
        Value::Map(m)
    }
}

impl<'de> serde::Deserialize<'de> for ScenarioSpec {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        ScenarioSpec::from_value(value).map_err(|e| serde::Error::custom(e.to_string()))
    }
}

impl serde::Serialize for AdaptiveCcSpec {
    fn to_value(&self) -> Value {
        let policy = match &self.policy {
            MetaPolicySpec::ConflictThreshold {
                threshold,
                ewma_weight,
            } => Value::Map(vec![(
                "conflict_threshold".into(),
                Value::Map(vec![
                    ("threshold".into(), Value::Num(*threshold)),
                    ("ewma_weight".into(), Value::Num(*ewma_weight)),
                ]),
            )]),
            MetaPolicySpec::RestartRate {
                threshold,
                ewma_weight,
            } => Value::Map(vec![(
                "restart_rate".into(),
                Value::Map(vec![
                    ("threshold".into(), Value::Num(*threshold)),
                    ("ewma_weight".into(), Value::Num(*ewma_weight)),
                ]),
            )]),
            MetaPolicySpec::ShadowScore { ewma_weight } => Value::Map(vec![(
                "shadow_score".into(),
                Value::Map(vec![("ewma_weight".into(), Value::Num(*ewma_weight))]),
            )]),
        };
        Value::Map(vec![
            (
                "candidates".into(),
                Value::Seq(
                    self.candidates
                        .iter()
                        .map(|c| Value::Str(cc_spec_name(*c).to_string()))
                        .collect(),
                ),
            ),
            ("policy".into(), policy),
            ("min_dwell_s".into(), Value::Num(self.min_dwell_s)),
            ("cooldown_s".into(), Value::Num(self.cooldown_s)),
            ("hysteresis".into(), Value::Num(self.hysteresis)),
        ])
    }
}

impl serde::Serialize for VariantSpec {
    fn to_value(&self) -> Value {
        let mut m = vec![("name".to_string(), Value::Str(self.name.clone()))];
        if !self.set.is_empty() {
            m.push(("set".into(), Value::Map(self.set.clone())));
        }
        if !self.quick.is_empty() {
            m.push(("quick".into(), Value::Map(self.quick.clone())));
        }
        Value::Map(m)
    }
}

impl serde::Serialize for WorkloadSpec {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("k".into(), self.k.to_value()),
            ("query_frac".into(), self.query_frac.to_value()),
            ("write_frac".into(), self.write_frac.to_value()),
            ("access_skew".into(), self.access_skew.to_value()),
            (
                "arrival_rate_factor".into(),
                self.arrival_rate_factor.to_value(),
            ),
            (
                "think_time_factor".into(),
                self.think_time_factor.to_value(),
            ),
        ])
    }
}

impl serde::Serialize for ControllerSpec {
    fn to_value(&self) -> Value {
        let tag = |t: &str, payload: Value| Value::Map(vec![(t.to_string(), payload)]);
        match self {
            ControllerSpec::None => Value::Str("none".into()),
            ControllerSpec::Unlimited => Value::Str("unlimited".into()),
            ControllerSpec::Fixed { bound } => tag(
                "fixed",
                Value::Map(vec![("bound".into(), Value::U64(u64::from(*bound)))]),
            ),
            ControllerSpec::FixedAnalyticOptimum { at_ms, n_max } => tag(
                "fixed_analytic_optimum",
                Value::Map(vec![
                    ("at_ms".into(), Value::Num(*at_ms)),
                    ("n_max".into(), Value::U64(u64::from(*n_max))),
                ]),
            ),
            ControllerSpec::Is(p) => tag("is", p.to_value()),
            ControllerSpec::Pa(p) => tag("pa", p.to_value()),
            ControllerSpec::SelfTuningIs { is, outer } => tag(
                "self_tuning_is",
                Value::Map(vec![
                    ("is".into(), is.to_value()),
                    ("outer".into(), outer.to_value()),
                ]),
            ),
            ControllerSpec::SelfTuningPa { pa, outer } => tag(
                "self_tuning_pa",
                Value::Map(vec![
                    ("pa".into(), pa.to_value()),
                    ("outer".into(), outer.to_value()),
                ]),
            ),
            ControllerSpec::Hybrid(p) => tag(
                "hybrid",
                Value::Map(vec![
                    ("is".into(), p.is.to_value()),
                    ("pa".into(), p.pa.to_value()),
                    (
                        "bootstrap_samples".into(),
                        Value::U64(p.bootstrap_samples),
                    ),
                    ("revert_after".into(), Value::U64(u64::from(p.revert_after))),
                    (
                        "revert_window".into(),
                        Value::U64(u64::from(p.revert_window)),
                    ),
                ]),
            ),
            ControllerSpec::Iyer(p) => tag("iyer", p.to_value()),
            ControllerSpec::RetryBudget(p) => tag("retry_budget", p.to_value()),
            ControllerSpec::Tay {
                k,
                min_bound,
                max_bound,
            } => tag(
                "tay",
                Value::Map(vec![
                    ("k".into(), Value::U64(u64::from(*k))),
                    ("min_bound".into(), Value::U64(u64::from(*min_bound))),
                    ("max_bound".into(), Value::U64(u64::from(*max_bound))),
                ]),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_spec_parses_with_defaults() {
        let spec: ScenarioSpec = serde_json::from_str(
            r#"{"name": "mini", "horizon_ms": 1000.0}"#,
        )
        .unwrap();
        assert_eq!(spec.name, "mini");
        assert_eq!(spec.replications, 1);
        assert_eq!(spec.cc, CcKind::Certification);
        assert_eq!(spec.controller, ControllerSpec::None);
        assert_eq!(spec.workload, WorkloadSpec::default());
        assert!(!spec.record_optimum);
    }

    #[test]
    fn unknown_keys_are_rejected_everywhere() {
        for bad in [
            r#"{"name": "x", "horizon_ms": 1.0, "horizn": 2.0}"#,
            r#"{"name": "x", "horizon_ms": 1.0, "workload": {"kk": 8}}"#,
            r#"{"name": "x", "horizon_ms": 1.0, "system": {"terminal": 4}}"#,
            r#"{"name": "x", "horizon_ms": 1.0, "controller": {"is": {"beta2": 1}}}"#,
            r#"{"name": "x", "horizon_ms": 1.0, "columns": ["throughputt"]}"#,
        ] {
            let r: Result<ScenarioSpec, _> = serde_json::from_str(bad);
            assert!(r.is_err(), "accepted bad spec {bad}");
        }
    }

    #[test]
    fn controller_specs_parse_with_partial_params() {
        let spec: ScenarioSpec = serde_json::from_str(
            r#"{"name": "c", "horizon_ms": 1.0,
                "controller": {"is": {"initial_bound": 5, "max_bound": 60}}}"#,
        )
        .unwrap();
        let ControllerSpec::Is(p) = spec.controller else {
            panic!("wrong controller");
        };
        assert_eq!(p.initial_bound, 5);
        assert_eq!(p.max_bound, 60);
        // Unspecified fields keep the crate defaults.
        assert_eq!(p.beta, IsParams::default().beta);
    }

    #[test]
    fn cc_aliases_parse() {
        for (alias, want) in [
            ("certification", CcKind::Certification),
            ("2pl", CcKind::TwoPhaseLocking),
            ("wound-wait", CcKind::WoundWait),
            ("mvto", CcKind::Multiversion),
            ("Certification", CcKind::Certification),
        ] {
            let json = format!(r#"{{"name": "c", "horizon_ms": 1.0, "cc": "{alias}"}}"#);
            let spec: ScenarioSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec.cc, want, "{alias}");
        }
    }

    #[test]
    fn truncating_and_mistyped_integers_are_rejected() {
        for bad in [
            // u32 truncation: 2^32 would silently become 0.
            r#"{"name": "x", "horizon_ms": 1.0, "replications": 4294967296}"#,
            r#"{"name": "x", "horizon_ms": 1.0, "controller": {"fixed": {"bound": 4294967296}}}"#,
            r#"{"name": "x", "horizon_ms": 1.0,
                "controller": {"fixed_analytic_optimum": {"n_max": 4294967296}}}"#,
            r#"{"name": "x", "horizon_ms": 1.0,
                "controller": {"tay": {"k": 4294967296, "max_bound": 60}}}"#,
            // Present-but-mistyped optional fields must error, not
            // silently keep their defaults.
            r#"{"name": "x", "horizon_ms": 1.0,
                "controller": {"fixed_analytic_optimum": {"at_ms": "1e6", "n_max": 100}}}"#,
            r#"{"name": "x", "horizon_ms": 1.0,
                "controller": {"tay": {"k": 4, "min_bound": "two", "max_bound": 60}}}"#,
        ] {
            let r: Result<ScenarioSpec, _> = serde_json::from_str(bad);
            assert!(r.is_err(), "accepted bad spec {bad}");
        }
    }

    #[test]
    fn variant_names_are_filename_safe() {
        for bad in ["cc/2pl", "", "a b"] {
            let json = format!(
                r#"{{"name": "x", "horizon_ms": 1.0, "variants": [{{"name": "{bad}"}}]}}"#
            );
            let r: Result<ScenarioSpec, _> = serde_json::from_str(&json);
            assert!(r.is_err(), "accepted variant name `{bad}`");
        }
        // The dot stays legal: `iyer-0.75` is a real ported label.
        let ok: ScenarioSpec = serde_json::from_str(
            r#"{"name": "x", "horizon_ms": 1.0, "variants": [{"name": "iyer-0.75"}]}"#,
        )
        .unwrap();
        assert_eq!(ok.variants[0].name, "iyer-0.75");
    }

    #[test]
    fn open_arrival_rejects_stray_keys() {
        let r: Result<ScenarioSpec, _> = serde_json::from_str(
            r#"{"name": "x", "horizon_ms": 1.0,
                "system": {"arrival": {"open": {
                    "interarrival": {"exponential": 5}, "rate_per_s": 200}}}}"#,
        );
        assert!(r.is_err(), "stray `rate_per_s` key silently dropped");
    }

    #[test]
    fn offered_load_lowers_to_interarrival_mean() {
        let spec: ScenarioSpec = serde_json::from_str(
            r#"{"name": "x", "horizon_ms": 1.0,
                "system": {"terminals": 80, "offered_load_per_s": 250}}"#,
        )
        .unwrap();
        let sys: SystemConfig = crate::value_util::from_overrides(&spec.system, "system").unwrap();
        let alc_tpsim::config::ArrivalProcess::Open { interarrival } = sys.arrival else {
            panic!("offered load must lower to an open arrival stream");
        };
        assert_eq!(interarrival, alc_des::dist::Dist::exponential(4.0));

        // Both arrival vocabularies at once are ambiguous.
        let r: Result<ScenarioSpec, _> = serde_json::from_str(
            r#"{"name": "x", "horizon_ms": 1.0,
                "system": {"arrival": "closed", "offered_load_per_s": 250}}"#,
        );
        assert!(r.is_err(), "conflicting arrival sources accepted");
        // And the rate must be a positive number.
        let r: Result<ScenarioSpec, _> = serde_json::from_str(
            r#"{"name": "x", "horizon_ms": 1.0,
                "system": {"offered_load_per_s": "fast"}}"#,
        );
        assert!(r.is_err());
    }

    #[test]
    fn seed_belongs_at_top_level() {
        let r: Result<ScenarioSpec, _> = serde_json::from_str(
            r#"{"name": "x", "horizon_ms": 1.0, "system": {"seed": 42}}"#,
        );
        assert!(r.is_err());
    }

    #[test]
    fn cross_field_validations_reject_unsatisfiable_specs() {
        for (bad, why) in [
            (
                r#"{"name": "x", "horizon_ms": 1.0, "columns": [{"input": "alpha"}]}"#,
                "input column without variants",
            ),
            (
                r#"{"name": "x", "horizon_ms": 1.0, "label_from": "alpha"}"#,
                "label_from without variants",
            ),
            (
                r#"{"name": "x", "horizon_ms": 1.0,
                    "variants": [{"name": "a"}],
                    "columns": [{"input": "alpha"}]}"#,
                "input column with no matching cell",
            ),
            (
                r#"{"name": "x", "horizon_ms": 1.0,
                    "columns": ["post_jump_tracking_err"]}"#,
                "tracking column without record_optimum",
            ),
            (
                r#"{"name": "x", "horizon_ms": 1.0,
                    "variants": [{"name": "a"}],
                    "sweep": {"axes": [{"header": "h", "path": "cc",
                                        "values": ["2pl"]}]}}"#,
                "sweep and variants together",
            ),
            (
                r#"{"name": "x", "horizon_ms": 1.0,
                    "sweep": {"axes": [{"header": "h", "path": "system.terminals",
                                        "values": [5, 5]}]}}"#,
                "duplicate axis labels collapse cells",
            ),
            (
                r#"{"name": "x", "horizon_ms": 1.0,
                    "cc": {"phases": [[100.0, "2pl"]]}}"#,
                "cc phases must start at 0",
            ),
            (
                r#"{"name": "x", "horizon_ms": 1.0,
                    "faults": [{"at": 1.0, "cpus_down": 2}]}"#,
                "fault without duration",
            ),
        ] {
            let r: Result<ScenarioSpec, _> = serde_json::from_str(bad);
            assert!(r.is_err(), "accepted bad spec ({why}): {bad}");
        }
    }

    #[test]
    fn cc_phases_parse_and_split() {
        let spec: ScenarioSpec = serde_json::from_str(
            r#"{"name": "x", "horizon_ms": 1.0,
                "cc": {"phases": [[0.0, "certification"], [500.0, "2pl"]]}}"#,
        )
        .unwrap();
        assert_eq!(spec.cc, CcKind::Certification);
        assert_eq!(spec.cc_phases, vec![(500.0, CcKind::TwoPhaseLocking)]);
    }

    #[test]
    fn adaptive_cc_parses_and_pins_initial_protocol() {
        let spec: ScenarioSpec = serde_json::from_str(
            r#"{"name": "a", "horizon_ms": 1.0,
                "cc": {"adaptive": {
                    "candidates": ["certification", "2pl"],
                    "policy": {"conflict_threshold": {"threshold": 0.8}},
                    "min_dwell_s": 30.0,
                    "cooldown_s": 4.0,
                    "hysteresis": 0.2}}}"#,
        )
        .unwrap();
        assert_eq!(spec.cc, CcKind::Certification);
        assert!(spec.cc_phases.is_empty());
        let ad = spec.cc_adaptive.expect("adaptive section");
        assert_eq!(
            ad.candidates,
            vec![CcKind::Certification, CcKind::TwoPhaseLocking]
        );
        assert_eq!(
            ad.policy,
            MetaPolicySpec::ConflictThreshold {
                threshold: 0.8,
                ewma_weight: 0.3
            }
        );
        assert_eq!(ad.min_dwell_s, 30.0);
        let (candidates, policy) = ad.build();
        assert_eq!(candidates.len(), 2);
        assert_eq!(policy.candidate_count(), 2);
        assert_eq!(policy.name(), "conflict-threshold");
    }

    #[test]
    fn adaptive_cc_rejects_malformed_sections() {
        let with_cc = |cc: &str| format!(r#"{{"name": "a", "horizon_ms": 1.0, "cc": {cc}}}"#);
        for (bad, why) in [
            (
                r#"{"adaptive": {"candidates": ["2pl"],
                    "policy": {"shadow_score": {}}, "min_dwell_s": 1.0}}"#,
                "single candidate",
            ),
            (
                r#"{"adaptive": {"candidates": ["2pl", "2pl"],
                    "policy": {"shadow_score": {}}, "min_dwell_s": 1.0}}"#,
                "duplicate candidates",
            ),
            (
                r#"{"adaptive": {"candidates": ["2pl", "mvto"], "min_dwell_s": 1.0}}"#,
                "missing policy",
            ),
            (
                r#"{"adaptive": {"candidates": ["2pl", "mvto"],
                    "policy": {"shadow_score": {}}}}"#,
                "missing min_dwell_s",
            ),
            (
                r#"{"adaptive": {"candidates": ["2pl", "mvto"],
                    "policy": {"shadow_score": {"threshold": 1.0}}, "min_dwell_s": 1.0}}"#,
                "shadow_score takes no threshold",
            ),
            (
                r#"{"adaptive": {"candidates": ["2pl", "mvto"],
                    "policy": {"restart_rate": {"threshold": 1.5}}, "min_dwell_s": 1.0}}"#,
                "abort-ratio threshold >= 1",
            ),
            (
                r#"{"adaptive": {"candidates": ["2pl", "mvto"],
                    "policy": {"conflict_threshold": {"threshold": 0.5}},
                    "min_dwell_s": 1.0, "hysteresis": 1.0}}"#,
                "hysteresis out of range",
            ),
            (
                r#"{"adaptive": {"candidates": ["2pl", "mvto"],
                    "policy": {"conflict_threshold": {"threshold": 0.5}},
                    "min_dwell_s": 1.0, "dwell": 2.0}}"#,
                "unknown field",
            ),
        ] {
            let r: Result<ScenarioSpec, _> = serde_json::from_str(&with_cc(bad));
            assert!(r.is_err(), "accepted bad adaptive section ({why}): {bad}");
        }
    }

    #[test]
    fn adaptive_cc_is_set_addressable() {
        // `--set cc.adaptive.min_dwell_s=5` must reach into the section.
        let mut tree: Value = serde_json::from_str(
            r#"{"name": "a", "horizon_ms": 1.0,
                "cc": {"adaptive": {
                    "candidates": ["certification", "2pl"],
                    "policy": {"conflict_threshold": {"threshold": 0.8}},
                    "min_dwell_s": 30.0}}}"#,
        )
        .unwrap();
        crate::value_util::set_path(&mut tree, "cc.adaptive.min_dwell_s", Value::Num(5.0))
            .unwrap();
        crate::value_util::set_path(
            &mut tree,
            "cc.adaptive.policy.conflict_threshold.threshold",
            Value::Num(2.5),
        )
        .unwrap();
        let spec = ScenarioSpec::from_value(&tree).unwrap();
        let ad = spec.cc_adaptive.unwrap();
        assert_eq!(ad.min_dwell_s, 5.0);
        assert_eq!(
            ad.policy,
            MetaPolicySpec::ConflictThreshold {
                threshold: 2.5,
                ewma_weight: 0.3
            }
        );
    }

    #[test]
    fn switch_derived_columns_parse_and_format() {
        let spec: ScenarioSpec = serde_json::from_str(
            r#"{"name": "a", "horizon_ms": 1.0, "columns": [
                "switch_count",
                {"time_in_protocol": {"cc": "2pl"}},
                {"time_in_protocol": {"cc": "mvto", "header": "mvto_s"}},
                "post_switch_settling_time_s",
                {"post_switch_settling_time_s": {"band": 0.1, "header": "settle"}}
            ]}"#,
        )
        .unwrap();
        let headers: Vec<String> = spec.columns.iter().map(ColumnSpec::header).collect();
        assert_eq!(
            headers,
            vec![
                "switch_count",
                "time_in_protocol:2pl",
                "mvto_s",
                "post_switch_settling_time_s",
                "settle"
            ]
        );
        assert!(spec.columns.iter().all(ColumnSpec::needs_trajectories));
        assert!(!spec.columns.iter().any(ColumnSpec::needs_optimum));

        // Format against a synthetic trace: cert for 0–10 s, 2pl after.
        use alc_tpsim::engine::SwitchEvent;
        let mut traj = Trajectories::new();
        traj.switches.push(SwitchEvent {
            decided_at_ms: 9_000.0,
            completed_at_ms: 10_000.0,
            from: CcKind::Certification,
            to: CcKind::TwoPhaseLocking,
        });
        for i in 0..20 {
            let t = alc_des::SimTime::new(f64::from(i) * 1_000.0);
            // Throughput recovers to 100 (±1) three samples after the swap.
            let v = if i < 13 { 40.0 } else { 100.0 + f64::from(i % 2) };
            traj.throughput.push(t, v);
        }
        let fmt = |col: &ColumnSpec| match col {
            ColumnSpec::Derived(d) => d.format(&traj, 20_000.0, CcKind::Certification),
            _ => unreachable!(),
        };
        assert_eq!(fmt(&spec.columns[0]), "1");
        // 2pl in force from the swap at 10 s to the 20 s horizon.
        assert_eq!(fmt(&spec.columns[1]), "10.0");
        assert_eq!(fmt(&spec.columns[2]), "0");
        // Settles when throughput reaches the final-quarter level at 13 s.
        assert_eq!(fmt(&spec.columns[3]), "3.00");
    }

    #[test]
    fn stat_columns_cover_run_stats() {
        let stats = RunStats {
            duration_ms: 1000.0,
            commits: 10,
            aborts: 2,
            throughput_per_sec: 10.0,
            mean_response_ms: 55.5,
            mean_mpl: 3.3,
            mean_bound: 8.0,
            abort_ratio: 1.0 / 6.0,
            cpu_utilization: 0.5,
            displaced: 1,
            conflicts_per_commit: 0.2,
            lost: 0,
        };
        assert_eq!(StatColumn::Commits.format(&stats), "10");
        assert_eq!(StatColumn::Displaced.format(&stats), "1");
        assert_eq!(StatColumn::ThroughputPerS.format(&stats), "10.0");
        for c in StatColumn::ALL {
            assert_eq!(StatColumn::parse(c.name()).unwrap(), c);
        }
    }
}
