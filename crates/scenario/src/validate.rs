//! Static resolution of override paths against the spec schema.
//!
//! Variant `set`/`quick` overrides, spec-level `quick` overrides and
//! sweep-axis `path`s are dotted paths applied to the raw JSON tree
//! before the typed reparse. The reparse rejects invented keys, but it
//! checks one variant at a time, reports only the first failure, and —
//! for `quick` paths — only fires under `--quick`. This pass resolves
//! *every* path up front against a schema built from the typed spec
//! (field lists come from the configs' own default serialization, so
//! they cannot drift), and reports all dead paths at once with the
//! valid candidates. `scenario validate` therefore catches a dead path
//! without compiling — let alone running — anything.
//!
//! The check is deliberately a *superset* filter: a path it accepts may
//! still be rejected by the strict reparse in context (e.g. a
//! `controller.is.*` override on a spec whose controller is `pa`), but a
//! path it rejects can never be applied meaningfully.

use alc_core::controller::{
    IsParams, IyerRuleParams, OuterParams, PaOuterParams, PaParams, RetryBudgetParams,
};
use alc_tpsim::config::{ControlConfig, SystemConfig};
use serde::{Serialize, Value};

use crate::spec::ScenarioSpec;
use crate::SpecError;

/// One position in the path schema.
enum Node {
    /// Anything below here is structurally fine (left to the reparse).
    Any,
    /// A leaf: the path may end here but never descend further.
    Scalar,
    /// A map with a closed key set.
    Keys(Vec<(String, Node)>),
}

/// The field names of `T::default()`'s serialized form.
fn serialized_keys<T: Default + Serialize>() -> Vec<String> {
    match T::default().to_value() {
        Value::Map(entries) => entries.into_iter().map(|(k, _)| k).collect(),
        _ => Vec::new(),
    }
}

/// A closed map whose keys are `T`'s serialized fields (values free —
/// dist shorthands and enums are maps or strings as the spec pleases).
fn param_map<T: Default + Serialize>() -> Node {
    Node::Keys(
        serialized_keys::<T>()
            .into_iter()
            .map(|k| (k, Node::Any))
            .collect(),
    )
}

fn keys(entries: Vec<(&str, Node)>) -> Node {
    Node::Keys(entries.into_iter().map(|(k, n)| (k.to_string(), n)).collect())
}

/// Builds the path schema for `spec`. The `inputs` subtree is dynamic:
/// its keys are the spec's own variant names and cell names.
fn schema(spec: &ScenarioSpec) -> Node {
    let system = {
        let mut ks: Vec<(String, Node)> = serialized_keys::<SystemConfig>()
            .into_iter()
            // `system.seed` is rejected by the parser (the top-level
            // `seed` field owns it), so it is not a live path either.
            .filter(|k| k != "seed")
            .map(|k| (k, Node::Any))
            .collect();
        // Derived load knob: lowers to an open arrival stream at parse
        // time so grids read in the paper's tx/s units.
        ks.push(("offered_load_per_s".to_string(), Node::Scalar));
        Node::Keys(ks)
    };
    let controller = keys(vec![
        ("fixed", keys(vec![("bound", Node::Scalar)])),
        (
            "fixed_analytic_optimum",
            keys(vec![("at_ms", Node::Scalar), ("n_max", Node::Scalar)]),
        ),
        ("is", param_map::<IsParams>()),
        ("pa", param_map::<PaParams>()),
        ("iyer", param_map::<IyerRuleParams>()),
        ("retry_budget", param_map::<RetryBudgetParams>()),
        (
            "tay",
            keys(vec![
                ("k", Node::Scalar),
                ("min_bound", Node::Scalar),
                ("max_bound", Node::Scalar),
            ]),
        ),
        (
            "hybrid",
            keys(vec![
                ("is", param_map::<IsParams>()),
                ("pa", param_map::<PaParams>()),
                ("bootstrap_samples", Node::Scalar),
                ("revert_after", Node::Scalar),
                ("revert_window", Node::Scalar),
            ]),
        ),
        (
            "self_tuning_is",
            keys(vec![
                ("is", param_map::<IsParams>()),
                ("outer", param_map::<OuterParams>()),
            ]),
        ),
        (
            "self_tuning_pa",
            keys(vec![
                ("pa", param_map::<PaParams>()),
                ("outer", param_map::<PaOuterParams>()),
            ]),
        ),
    ]);
    let cc = keys(vec![
        ("phases", Node::Any),
        (
            "adaptive",
            keys(vec![
                ("candidates", Node::Any),
                ("policy", Node::Any),
                ("min_dwell_s", Node::Scalar),
                ("cooldown_s", Node::Scalar),
                ("hysteresis", Node::Scalar),
            ]),
        ),
    ]);
    let workload = keys(vec![
        ("k", Node::Any),
        ("query_frac", Node::Any),
        ("write_frac", Node::Any),
        ("access_skew", Node::Any),
        ("arrival_rate_factor", Node::Any),
        ("think_time_factor", Node::Any),
    ]);
    let inputs = Node::Keys(
        spec.inputs
            .iter()
            .map(|(variant, cells)| {
                (
                    variant.clone(),
                    Node::Keys(
                        cells
                            .iter()
                            .map(|(cell, _)| (cell.clone(), Node::Scalar))
                            .collect(),
                    ),
                )
            })
            .collect(),
    );
    let clients = keys(vec![
        ("population", Node::Scalar),
        ("timeout", Node::Any),
        ("max_retries", Node::Scalar),
        (
            "retry",
            keys(vec![
                (
                    "backoff",
                    keys(vec![
                        ("base_ms", Node::Scalar),
                        ("factor", Node::Scalar),
                        ("max_ms", Node::Scalar),
                        ("jitter", Node::Scalar),
                    ]),
                ),
                (
                    "budget",
                    keys(vec![
                        ("per_commit", Node::Scalar),
                        ("burst", Node::Scalar),
                        ("delay_ms", Node::Scalar),
                    ]),
                ),
                ("hedged", keys(vec![("delay_ms", Node::Scalar)])),
            ]),
        ),
        ("shed_retries", Node::Scalar),
        (
            "feedback",
            keys(vec![
                ("gain", Node::Scalar),
                ("reference_ms", Node::Scalar),
                ("weight", Node::Scalar),
            ]),
        ),
    ]);
    keys(vec![
        ("name", Node::Scalar),
        ("description", Node::Scalar),
        ("seed", Node::Scalar),
        ("replications", Node::Scalar),
        ("horizon_ms", Node::Scalar),
        ("cc", cc),
        ("faults", Node::Any),
        ("clients", clients),
        ("system", system),
        ("control", param_map::<ControlConfig>()),
        ("workload", workload),
        ("controller", controller),
        ("record_optimum", Node::Scalar),
        ("trajectories", Node::Scalar),
        ("label_header", Node::Scalar),
        ("columns", Node::Any),
        ("variants", Node::Any),
        ("sweep", Node::Any),
        ("inputs", inputs),
        ("label_from", Node::Scalar),
        ("quick", Node::Any),
    ])
}

/// Resolves one dotted path against the schema.
fn resolve(schema: &Node, path: &str) -> Result<(), String> {
    if path.is_empty() {
        return Err("the path is empty".to_string());
    }
    let mut node = schema;
    let mut trail: Vec<&str> = Vec::new();
    for seg in path.split('.') {
        if seg.is_empty() {
            return Err("the path has an empty segment".to_string());
        }
        match node {
            Node::Any => return Ok(()),
            Node::Scalar => {
                return Err(format!(
                    "`{}` is a leaf field; the path cannot descend into it",
                    trail.join(".")
                ));
            }
            Node::Keys(entries) => match entries.iter().find(|(k, _)| k == seg) {
                Some((_, child)) => node = child,
                None => {
                    let ctx = if trail.is_empty() {
                        "the spec".to_string()
                    } else {
                        format!("`{}`", trail.join("."))
                    };
                    let mut valid: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
                    valid.sort_unstable();
                    return Err(format!(
                        "no key `{seg}` under {ctx} (valid: {})",
                        valid.join(", ")
                    ));
                }
            },
        }
        trail.push(seg);
    }
    Ok(())
}

/// Checks every override path the spec stores — spec-level `quick`,
/// variant `set`/`quick`, sweep-axis `path` — against the schema,
/// collecting *all* dead paths into one error.
pub fn check_override_paths(spec: &ScenarioSpec) -> Result<(), SpecError> {
    let schema = schema(spec);
    let mut dead = Vec::new();
    let mut check = |origin: String, path: &str| {
        if let Err(why) = resolve(&schema, path) {
            dead.push(format!("{origin}: `{path}`: {why}"));
        }
    };
    for (path, _) in &spec.quick {
        check("`quick`".to_string(), path);
    }
    for v in &spec.variants {
        for (path, _) in &v.set {
            check(format!("variant `{}` `set`", v.name), path);
        }
        for (path, _) in &v.quick {
            check(format!("variant `{}` `quick`", v.name), path);
        }
    }
    if let Some(sweep) = &spec.sweep {
        for (i, axis) in sweep.axes.iter().enumerate() {
            check(format!("sweep axis {i} (`{}`)", axis.header), &axis.path);
        }
    }
    if dead.is_empty() {
        Ok(())
    } else {
        Err(SpecError::new(format!(
            "{} dead override path(s):\n  {}",
            dead.len(),
            dead.join("\n  ")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(json: &str) -> Result<ScenarioSpec, SpecError> {
        let v: Value = serde_json::from_str(json).expect("test JSON parses");
        ScenarioSpec::from_value(&v)
    }

    fn base(extra: &str) -> String {
        format!(r#"{{"name": "t", "horizon_ms": 1000.0{extra}}}"#)
    }

    #[test]
    fn live_paths_of_every_shape_resolve() {
        let spec = parse(&base(
            r#", "quick": {
                "horizon_ms": 10.0,
                "system.terminals": 10,
                "system.offered_load_per_s": 50,
                "system.think": {"exponential": 100},
                "control.sample_interval_ms": 100.0,
                "workload.k": 4,
                "controller.pa.dither_amplitude": 2.0,
                "controller.hybrid.is.initial_bound": 5,
                "controller.self_tuning_pa.outer.window": 4,
                "cc": "2pl",
                "cc.adaptive.min_dwell_s": 1.0,
                "faults": []
            }"#,
        ))
        .expect("all live paths parse");
        check_override_paths(&spec).expect("all live paths resolve");
    }

    #[test]
    fn dead_system_field_is_reported_with_candidates() {
        let err = parse(&base(r#", "quick": {"system.terminalz": 10}"#)).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("dead override path"), "{msg}");
        assert!(msg.contains("terminalz"), "{msg}");
        assert!(msg.contains("terminals"), "candidates missing: {msg}");
    }

    #[test]
    fn dead_controller_param_is_reported() {
        let err = parse(&base(
            r#", "variants": [{"name": "a", "set": {"controller.pa.alpa": 0.5}}]"#,
        ))
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("variant `a` `set`"), "{msg}");
        assert!(msg.contains("alpha"), "candidates missing: {msg}");
    }

    #[test]
    fn descending_into_a_leaf_is_dead() {
        let err = parse(&base(r#", "quick": {"horizon_ms.unit": 1}"#)).unwrap_err();
        assert!(err.to_string().contains("leaf field"), "{err}");
    }

    #[test]
    fn system_seed_is_not_a_live_path() {
        // The parser rejects `system.seed` with its own message; an
        // override path reaching it must die statically too.
        let err = parse(&base(r#", "quick": {"system.seed": 7}"#)).unwrap_err();
        assert!(err.to_string().contains("no key `seed`"), "{err}");
    }

    #[test]
    fn dead_sweep_axis_path_is_reported() {
        let err = parse(&base(
            r#", "sweep": {"axes": [{"header": "x", "path": "system.offered_load",
                                     "values": [1, 2]}]}"#,
        ))
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("sweep axis 0"), "{msg}");
        assert!(msg.contains("offered_load_per_s"), "candidates missing: {msg}");
    }

    #[test]
    fn input_cell_paths_check_variant_and_cell_names() {
        let good = parse(&base(
            r#", "label_header": "v",
               "columns": [{"input": "alpha"}, "commits"],
               "variants": [{"name": "a", "set": {},
                             "quick": {"inputs.a.alpha": "0.5"}}],
               "inputs": {"a": {"alpha": "0.9"}}"#,
        ))
        .expect("live input-cell path parses");
        check_override_paths(&good).expect("live input-cell path resolves");

        let err = parse(&base(
            r#", "label_header": "v",
               "columns": [{"input": "alpha"}, "commits"],
               "variants": [{"name": "a", "set": {},
                             "quick": {"inputs.a.alfa": "0.5"}}],
               "inputs": {"a": {"alpha": "0.9"}}"#,
        ))
        .unwrap_err();
        assert!(err.to_string().contains("no key `alfa`"), "{err}");
    }

    #[test]
    fn schema_field_lists_track_the_configs() {
        // The schema derives its field lists from the configs' own
        // serialization, so a renamed field cannot leave a stale schema:
        // this test pins the linkage on one representative per config.
        for live in [
            "system.db_size",
            "control.victim_policy",
            "controller.is.max_bound",
            "controller.iyer.initial_bound",
        ] {
            let spec = parse(&base("")).expect("minimal spec");
            resolve(&schema(&spec), live).expect(live);
        }
    }
}
