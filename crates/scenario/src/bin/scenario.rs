//! `scenario` — run declarative load-control experiments from JSON specs.
//!
//! ```text
//! scenario run [--quick] [--out DIR] [--gate-log DIR] [--set path=value]... <spec.json>...
//! scenario trace [--quick] [--out DIR] [--variant LABEL] [--rep N] [--set path=value]... <spec.json>...
//! scenario report [--quick] [--out DIR] [--html FILE] [--set path=value]... <spec.json>
//! scenario validate <spec.json>...
//! scenario replay <spec.json> <log.jsonl>...
//! scenario list [DIR]
//! ```
//!
//! `run` prints each scenario's report table and writes `<name>.csv`
//! (plus `<name>[_<variant>]_trajectory.csv` when the spec records
//! trajectories) into `--out` (default `results/`); `--gate-log DIR`
//! additionally captures one replayable JSONL gate log per run.
//! `trace` runs one `(variant, replication)` cell with the lifecycle
//! trace sink installed, writes a Perfetto-loadable
//! `<stem>_trace.json`, and exits 1 unless every span balanced and
//! every span/instant tally reconciles with the run's own counters.
//! `report` runs a plan with trajectories retained and renders a
//! dependency-free static-HTML dashboard. `validate` parses and
//! compiles every spec (both full and quick scale) without running
//! anything. `replay` feeds captured gate logs back through the
//! `alc-runtime` control core and requires the re-derived decision
//! sequence to match the recorded one byte-for-byte (exit 1 on
//! divergence). `list` summarizes a directory of specs (default
//! `scenarios/`).

use std::path::PathBuf;

use alc_scenario::{parse_set_arg, spec::StatColumn, LoadedSpec, SpecError};
use serde::Value;

fn usage() {
    println!("usage: scenario <run | trace | report | validate | replay | list> ...");
    println!();
    println!("  run [--quick] [--out DIR] [--gate-log DIR] [--set path=value]... <spec.json>...");
    println!("      execute specs; tables to stdout, CSVs to --out (default results/)");
    println!("  trace [--quick] [--out DIR] [--variant LABEL] [--rep N] [--set path=value]...");
    println!("        <spec.json>...");
    println!("      run one cell per spec with span tracing on; write a Perfetto-");
    println!("      loadable <stem>_trace.json into --out (default results/) and");
    println!("      exit 1 unless the trace reconciles with the run's counters");
    println!("  report [--quick] [--out DIR] [--html FILE] [--set path=value]... <spec.json>");
    println!("      run a plan with trajectories retained and render a static-HTML");
    println!("      dashboard (default --out/<name>_dashboard.html)");
    println!("  validate <spec.json>...");
    println!("      parse + compile each spec (full and quick scale); exit 1 on error");
    println!("  replay <spec.json> <log.jsonl>...");
    println!("      replay captured gate logs through the alc-runtime control core;");
    println!("      exit 1 unless every decision sequence matches byte-for-byte");
    println!("  list [DIR]");
    println!("      summarize the specs in DIR (default scenarios/)");
    println!();
    println!("  --quick   apply each spec's `quick` overrides (CI scale)");
    println!("  --gate-log  also write one replayable gate log per run into DIR");
    println!("  --set     override any spec field by dotted path (numeric");
    println!("            segments index lists), e.g.");
    println!("            --set system.terminals=200 --set cc=2pl");
    print!("  stat columns:");
    for c in StatColumn::ALL {
        print!(" {}", c.name());
    }
    println!();
    println!("  client columns: issued attempts retries abandoned timeouts");
    println!("            shed_retries goodput_per_s retry_amplification");
    println!("            (need a `clients` section in the spec)");
    println!("  derived columns: post_jump_tracking_err conflict_ratio_at_peak");
    println!("            switch_count post_switch_settling_time_s");
    println!("            {{\"settling_time_s\": {{...}}}} {{\"time_in_protocol\": {{...}}}}");
    println!("            {{\"time_to_recover_s\": {{...}}}}");
    println!("            (see README \"Scenarios\")");
    println!("  spec extras: sweep grids (axes/pivot; system.offered_load_per_s");
    println!("            sweeps in tx/s), cc phases (drain-and-swap protocol");
    println!("            switching), cc adaptive (closed-loop protocol selection");
    println!("            with conflict_threshold/restart_rate/shadow_score");
    println!("            policies), faults (CPU kill/restart windows, fixed");
    println!("            duration or sampled repair distribution), clients");
    println!("            (closed client pools: timeouts, retry policies with");
    println!("            backoff/budget/hedging, abandonment, latency feedback,");
    println!("            retry shedding; pairs with the retry_budget controller)");
}

fn fail(e: &SpecError) -> ! {
    eprintln!("error: {e}");
    std::process::exit(2);
}

fn cmd_run(args: &[String]) {
    let mut quick = false;
    let mut out_dir = PathBuf::from("results");
    let mut gate_log_dir: Option<PathBuf> = None;
    let mut sets: Vec<(String, Value)> = Vec::new();
    let mut specs: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_dir = PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }));
            }
            "--gate-log" => {
                gate_log_dir = Some(PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--gate-log needs a directory");
                    std::process::exit(2);
                })));
            }
            "--set" => {
                let kv = it.next().unwrap_or_else(|| {
                    eprintln!("--set needs path=value");
                    std::process::exit(2);
                });
                sets.push(parse_set_arg(kv).unwrap_or_else(|e| fail(&e)));
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            other => specs.push(PathBuf::from(other)),
        }
    }
    if specs.is_empty() {
        usage();
        eprintln!("\nerror: no spec selected");
        std::process::exit(2);
    }

    // Compile everything before any output lands on disk.
    let plans: Vec<_> = specs
        .iter()
        .map(|path| {
            let mut loaded = LoadedSpec::read(path).unwrap_or_else(|e| fail(&e));
            loaded.apply_sets(&sets).unwrap_or_else(|e| fail(&e));
            loaded.compile(quick).unwrap_or_else(|e| fail(&e))
        })
        .collect();

    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let gate_log = gate_log_dir.map(|dir| alc_scenario::runner::GateLogRequest { dir, quick });
    for plan in &plans {
        #[allow(clippy::disallowed_methods)] // CLI progress timing, not simulation time
        let start = std::time::Instant::now();
        let records = alc_scenario::runner::run_plan_logged(plan, gate_log.as_ref())
            .expect("write gate logs");
        let report = alc_scenario::runner::build_report(plan, &records);
        let csv = report.write_csv(&out_dir).expect("write csv");
        let trajectories =
            alc_scenario::runner::write_trajectories(plan, &records, &out_dir)
                .expect("write trajectories");
        println!("{}", report.render());
        print!(
            "  [{} in {:.1}s, table → {}",
            plan.name,
            start.elapsed().as_secs_f64(),
            csv.display()
        );
        if !trajectories.is_empty() {
            print!(", {} trajectory file(s)", trajectories.len());
        }
        if let Some(req) = &gate_log {
            print!(", {} gate log(s) → {}", records.len(), req.dir.display());
        }
        println!("]\n");
    }
}

fn cmd_trace(args: &[String]) {
    let mut quick = false;
    let mut out_dir = PathBuf::from("results");
    let mut variant: Option<String> = None;
    let mut rep: usize = 0;
    let mut sets: Vec<(String, Value)> = Vec::new();
    let mut specs: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_dir = PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }));
            }
            "--variant" => {
                variant = Some(
                    it.next()
                        .unwrap_or_else(|| {
                            eprintln!("--variant needs a label");
                            std::process::exit(2);
                        })
                        .clone(),
                );
            }
            "--rep" => {
                rep = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--rep needs a replication index");
                        std::process::exit(2);
                    });
            }
            "--set" => {
                let kv = it.next().unwrap_or_else(|| {
                    eprintln!("--set needs path=value");
                    std::process::exit(2);
                });
                sets.push(parse_set_arg(kv).unwrap_or_else(|e| fail(&e)));
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            other => specs.push(PathBuf::from(other)),
        }
    }
    if specs.is_empty() {
        usage();
        eprintln!("\nerror: no spec selected");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &specs {
        let mut loaded = LoadedSpec::read(path).unwrap_or_else(|e| fail(&e));
        loaded.apply_sets(&sets).unwrap_or_else(|e| fail(&e));
        let plan = loaded.compile(quick).unwrap_or_else(|e| fail(&e));
        let v = match &variant {
            Some(label) => plan
                .variants
                .iter()
                .find(|v| &v.label == label)
                .unwrap_or_else(|| {
                    eprintln!("{}: no variant labeled `{label}`", plan.name);
                    std::process::exit(2);
                }),
            None => &plan.variants[0],
        };
        if rep >= v.seeds.len() {
            eprintln!(
                "{}: replication {rep} out of range ({} seed(s))",
                plan.name,
                v.seeds.len()
            );
            std::process::exit(2);
        }
        let out = alc_scenario::trace::trace_cell(&plan, v, rep, &out_dir)
            .expect("run traced cell");
        let file = out_dir.join(&out.file_name);
        let parsed = alc_scenario::trace::validate_trace_file(&file);
        println!(
            "{} — {} event(s), {} span(s) opened / {} closed → {}",
            plan.name,
            out.events,
            out.span_begins,
            out.span_ends,
            file.display()
        );
        for c in &out.checks {
            println!(
                "  {} {:<58} report {:>8}  trace {:>8}",
                if c.ok() { "OK  " } else { "FAIL" },
                c.what,
                c.report,
                c.trace
            );
        }
        if let Some((pid, tid, name, begins, ends)) = out.unbalanced {
            println!("  FAIL unbalanced span {name} on {pid}/{tid}: {begins} begin(s), {ends} end(s)");
        }
        match parsed {
            Ok(n) if n == out.events => {
                println!("  OK   file parses as trace JSON with all {n} event(s)");
            }
            Ok(n) => {
                println!("  FAIL file parses but holds {n} of {} event(s)", out.events);
                failed = true;
            }
            Err(e) => {
                println!("  FAIL {e}");
                failed = true;
            }
        }
        if !out.ok() {
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn cmd_report(args: &[String]) {
    let mut quick = false;
    let mut out_dir = PathBuf::from("results");
    let mut html: Option<PathBuf> = None;
    let mut sets: Vec<(String, Value)> = Vec::new();
    let mut specs: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_dir = PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }));
            }
            "--html" => {
                html = Some(PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--html needs a file");
                    std::process::exit(2);
                })));
            }
            "--set" => {
                let kv = it.next().unwrap_or_else(|| {
                    eprintln!("--set needs path=value");
                    std::process::exit(2);
                });
                sets.push(parse_set_arg(kv).unwrap_or_else(|e| fail(&e)));
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            other => specs.push(PathBuf::from(other)),
        }
    }
    if specs.is_empty() {
        usage();
        eprintln!("\nerror: no spec selected");
        std::process::exit(2);
    }
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    for path in &specs {
        let mut loaded = LoadedSpec::read(path).unwrap_or_else(|e| fail(&e));
        loaded.apply_sets(&sets).unwrap_or_else(|e| fail(&e));
        let mut plan = loaded.compile(quick).unwrap_or_else(|e| fail(&e));
        // The dashboard needs every cell's trajectories, whether or not
        // the spec asked for CSVs; the CSV writers stay gated on the
        // spec's own `trajectories` flag, so run artifacts don't change.
        for v in &mut plan.variants {
            v.keep_trajectories = true;
        }
        let records = alc_scenario::runner::run_plan(&plan);
        let report = alc_scenario::runner::build_report(&plan, &records);
        let page = alc_scenario::html::render_dashboard(&plan, &records, &report);
        let target = html
            .clone()
            .unwrap_or_else(|| out_dir.join(format!("{}_dashboard.html", plan.name)));
        std::fs::write(&target, &page).expect("write dashboard");
        println!(
            "{} — {} cell(s) → {} ({} bytes)",
            plan.name,
            records.len(),
            target.display(),
            page.len()
        );
    }
}

fn cmd_replay(args: &[String]) {
    let (spec_path, logs) = match args.split_first() {
        Some((s, rest)) if !rest.is_empty() && !s.starts_with('-') => (PathBuf::from(s), rest),
        _ => {
            eprintln!("replay needs a spec file and at least one gate log");
            std::process::exit(2);
        }
    };
    let spec = LoadedSpec::read(&spec_path).unwrap_or_else(|e| fail(&e));
    let mut failed = false;
    for log in logs {
        let log = PathBuf::from(log);
        match alc_scenario::conformance::replay_log(&spec, &log) {
            Ok(outcome) if outcome.conformance.is_identical() => {
                println!(
                    "OK   {} — {}/{}#{}: {} decision(s) byte-identical",
                    log.display(),
                    outcome.scenario,
                    if outcome.variant.is_empty() { "-" } else { &outcome.variant },
                    outcome.replication,
                    outcome.decisions
                );
            }
            Ok(outcome) => {
                let at = outcome.conformance.first_divergence.unwrap_or(0);
                let (rec, rep) = outcome.conformance.decision_lines();
                println!(
                    "FAIL {} — diverges at decision {at}:\n  recorded: {}\n  replayed: {}",
                    log.display(),
                    rec.get(at).map_or("<missing>", String::as_str),
                    rep.get(at).map_or("<missing>", String::as_str)
                );
                failed = true;
            }
            Err(e) => {
                println!("FAIL {} — {e}", log.display());
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn cmd_validate(args: &[String]) {
    if args.is_empty() {
        eprintln!("validate needs at least one spec file");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in args {
        let path = PathBuf::from(path);
        let outcome = LoadedSpec::read(&path).and_then(|loaded| {
            // A spec must compile at both scales: quick overrides are
            // part of the contract, not a best-effort extra.
            let full = loaded.compile(false)?;
            loaded.compile(true)?;
            Ok(full)
        });
        match outcome {
            Ok(plan) => {
                let runs: usize = plan.variants.iter().map(|v| v.seeds.len()).sum();
                println!(
                    "OK   {} — {} variant(s), {} run(s)",
                    path.display(),
                    plan.variants.len(),
                    runs
                );
            }
            Err(e) => {
                println!("FAIL {} — {e}", path.display());
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn cmd_list(args: &[String]) {
    let dir = args
        .first()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("scenarios"));
    let mut entries: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
        Err(e) => {
            eprintln!("cannot read {}: {e}", dir.display());
            std::process::exit(2);
        }
    };
    entries.sort();
    for path in entries {
        match LoadedSpec::read(&path)
            .and_then(|l| alc_scenario::spec::ScenarioSpec::from_value(&l.value))
        {
            Ok(spec) => {
                let variants = if spec.variants.is_empty() {
                    String::new()
                } else {
                    format!(" [{} variants]", spec.variants.len())
                };
                println!("{:<18} {}{}", spec.name, spec.description, variants);
            }
            Err(e) => println!("{:<18} (unreadable: {e})", path.display()),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--help" | "-h" | "help") | None => usage(),
        Some("run") => cmd_run(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("list") => cmd_list(&args[1..]),
        Some(other) => {
            usage();
            eprintln!("\nerror: unknown subcommand `{other}`");
            std::process::exit(2);
        }
    }
}
