//! The spec → run-plan compiler.
//!
//! Compilation is *deterministic*: the same spec tree (plus the same
//! `--quick`/`--set` inputs and trace files) always lowers to the same
//! [`RunPlan`], and the plan fully determines every simulator run (all
//! randomness derives from the per-replication seeds recorded in it).
//!
//! Variants compile by cloning the spec's JSON tree, applying the
//! variant's `set` overrides (then the quick overrides under `--quick`)
//! and re-parsing — so a variant can change *anything* a spec can say,
//! from one control flag to the whole controller object.

use std::path::Path;

use alc_tpsim::config::{CcKind, ControlConfig, SystemConfig};
use alc_tpsim::workload::WorkloadConfig;
use serde::Value;

use crate::spec::{
    AdaptiveCcSpec, ColumnSpec, ControllerSpec, FaultSpec, ScenarioSpec, StatColumn, VariantSpec,
};
use crate::value_util::{from_overrides, set_path};
use crate::SpecError;

/// A fully lowered scenario: everything the runner needs, nothing left
/// to resolve.
#[derive(Debug, Clone, PartialEq)]
pub struct RunPlan {
    /// Scenario id (CSV stem).
    pub name: String,
    /// Report title.
    pub description: String,
    /// Label column header.
    pub label_header: String,
    /// Columns of the report.
    pub columns: Vec<ColumnSpec>,
    /// Grid structure when the plan came from a `sweep` spec: the
    /// variants are the cross-product cells in row-major order (last
    /// axis fastest).
    pub sweep: Option<SweepPlan>,
    /// One compiled variant per run group.
    pub variants: Vec<VariantPlan>,
}

/// The compiled shape of a sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlan {
    /// `(header, cell labels)` per axis, in axis order.
    pub axes: Vec<(String, Vec<String>)>,
    /// Pivot the last axis into columns showing `(stat, prefix)`.
    pub pivot: Option<(StatColumn, String)>,
}

impl SweepPlan {
    /// Grid coordinates of cell `idx` (row-major, last axis fastest).
    pub fn coords(&self, mut idx: usize) -> Vec<usize> {
        let mut coords = vec![0; self.axes.len()];
        for i in (0..self.axes.len()).rev() {
            let len = self.axes[i].1.len();
            coords[i] = idx % len;
            idx /= len;
        }
        coords
    }
}

/// One compiled variant: a concrete engine configuration plus its
/// replication seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantPlan {
    /// Variant label ("" for the implicit single variant) — names
    /// trajectory files and identifies the run group.
    pub label: String,
    /// Label shown in the report table (differs from `label` when the
    /// spec routes it through `label_from`; labels may repeat, names
    /// may not).
    pub display_label: String,
    /// Literal input cells of this variant, for `{"input": …}` columns.
    pub cells: Vec<(String, String)>,
    /// Physical system (seed field is per-replication; see `seeds`).
    pub sys: SystemConfig,
    /// Lowered time-varying workload.
    pub workload: WorkloadConfig,
    /// CC protocol at t = 0 (for adaptive plans: `candidates[0]`).
    pub cc: CcKind,
    /// Scheduled drain-and-swap CC switches `(t_ms, target)`.
    pub cc_switches: Vec<(f64, CcKind)>,
    /// Closed-loop protocol selection (builds one policy per run).
    pub adaptive_cc: Option<AdaptiveCcSpec>,
    /// Scheduled CPU-capacity deltas `(t_ms, delta)` lowered from the
    /// fault windows, ascending — shared by every replication (empty
    /// when `fault_schedules` carries per-replication timelines).
    pub faults: Vec<(f64, i32)>,
    /// Per-replication fault timelines, present when any fault uses a
    /// sampled `repair` distribution (repair times differ per seed);
    /// indexed like `seeds`.
    pub fault_schedules: Option<Vec<Vec<(f64, i32)>>>,
    /// Closed-loop client pool replacing the patient terminals (timeouts,
    /// retries, abandonment); `None` runs the paper's patient model.
    pub clients: Option<alc_tpsim::client::ClientConfig>,
    /// Measurement/control wiring.
    pub control: ControlConfig,
    /// Controller to instantiate per replication.
    pub controller: ControllerSpec,
    /// Simulated horizon, ms.
    pub horizon_ms: f64,
    /// Master seed per replication (replication 0 uses the spec seed).
    pub seeds: Vec<u64>,
    /// Record the analytic-optimum trajectory.
    pub record_optimum: bool,
    /// Write trajectory CSVs.
    pub trajectories: bool,
    /// Retain trajectories in the run records (set when the plan's
    /// columns derive from them, even without trajectory CSV output).
    pub keep_trajectories: bool,
}

/// Derives the replication-`r` seed from the spec seed (replication 0 is
/// the spec seed itself, so single-replication scenarios reproduce the
/// bespoke figure runs exactly).
pub fn replication_seed(seed: u64, r: u32) -> u64 {
    seed.wrapping_add(u64::from(r).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Compiles a spec tree. `base_dir` resolves trace paths; `quick`
/// applies the spec's CI-scale overrides.
pub fn compile_value(base: &Value, base_dir: &Path, quick: bool) -> Result<RunPlan, SpecError> {
    let spec = ScenarioSpec::from_value(base)?;
    if spec.sweep.is_some() {
        return compile_sweep(base, base_dir, quick);
    }
    let implicit;
    let variant_specs: &[VariantSpec] = if spec.variants.is_empty() {
        implicit = [VariantSpec {
            name: String::new(),
            set: Vec::new(),
            quick: Vec::new(),
        }];
        &implicit
    } else {
        &spec.variants
    };

    let mut variants = Vec::with_capacity(variant_specs.len());
    for vs in variant_specs {
        let mut tree = base.clone();
        for (path, val) in &vs.set {
            set_path(&mut tree, path, val.clone())
                .map_err(|e| e.context(format!("variant `{}`", vs.name)))?;
        }
        if quick {
            for (path, val) in &spec.quick {
                set_path(&mut tree, path, val.clone())
                    .map_err(|e| e.context("quick overrides"))?;
            }
            for (path, val) in &vs.quick {
                set_path(&mut tree, path, val.clone())
                    .map_err(|e| e.context(format!("variant `{}` quick", vs.name)))?;
            }
        }
        let vspec = ScenarioSpec::from_value(&tree)
            .map_err(|e| e.context(format!("variant `{}`", vs.name)))?;
        variants.push(build_variant(&vspec, &vs.name, base_dir)?);
    }

    finish_plan(spec, None, variants)
}

/// Compiles a sweep spec: spec-level quick overrides apply first (they
/// may rescale the grid itself), then the cross-product expands into one
/// cell per combination, each cell a plain single-run spec with the axis
/// values applied. Expansion is deterministic: row-major order, last
/// axis fastest.
fn compile_sweep(base: &Value, base_dir: &Path, quick: bool) -> Result<RunPlan, SpecError> {
    let mut tree = base.clone();
    if quick {
        let spec0 = ScenarioSpec::from_value(base)?;
        for (path, val) in &spec0.quick {
            set_path(&mut tree, path, val.clone()).map_err(|e| e.context("quick overrides"))?;
        }
    }
    let spec = ScenarioSpec::from_value(&tree).map_err(|e| e.context("quick overrides"))?;
    let sweep = spec.sweep.clone().expect("compile_sweep needs a sweep section");

    // Each cell re-parses as a plain spec: strip the sweep section.
    let cell_base = {
        let Value::Map(entries) = &tree else {
            // alc-lint: allow(panic-in-lib, reason="from_value on this tree just succeeded, so it is a map")
            unreachable!("parsed specs are maps");
        };
        let mut kept: Vec<(String, Value)> = entries.clone();
        kept.retain(|(k, _)| k != "sweep");
        Value::Map(kept)
    };

    let lens: Vec<usize> = sweep.axes.iter().map(|a| a.values.len()).collect();
    let total: usize = lens.iter().product();
    let sweep_plan = SweepPlan {
        axes: sweep
            .axes
            .iter()
            .map(|a| {
                (
                    a.header.clone(),
                    (0..a.values.len()).map(|i| a.label(i)).collect(),
                )
            })
            .collect(),
        pivot: sweep.pivot.as_ref().map(|p| (p.stat, p.prefix.clone())),
    };

    let mut variants = Vec::with_capacity(total);
    for idx in 0..total {
        let coords = sweep_plan.coords(idx);
        let mut cell_tree = cell_base.clone();
        let mut label_parts = Vec::with_capacity(coords.len());
        for (axis, &c) in sweep.axes.iter().zip(&coords) {
            set_path(&mut cell_tree, &axis.path, axis.values[c].clone())
                .map_err(|e| e.context(format!("sweep axis `{}`", axis.header)))?;
            label_parts.push(axis.label(c));
        }
        let label = label_parts.join("_");
        let vspec = ScenarioSpec::from_value(&cell_tree)
            .map_err(|e| e.context(format!("sweep cell `{label}`")))?;
        variants.push(build_variant(&vspec, &label, base_dir)?);
    }

    finish_plan(spec, Some(sweep_plan), variants)
}

/// Assembles the plan and back-fills the trajectory-retention flag from
/// the (plan-level) column set.
fn finish_plan(
    spec: ScenarioSpec,
    sweep: Option<SweepPlan>,
    mut variants: Vec<VariantPlan>,
) -> Result<RunPlan, SpecError> {
    let derived = spec.columns.iter().any(ColumnSpec::needs_trajectories);
    for v in &mut variants {
        v.keep_trajectories = v.trajectories || derived;
    }
    let label_header = match &sweep {
        Some(s) => s.axes[0].0.clone(),
        None => spec.label_header,
    };
    Ok(RunPlan {
        name: spec.name,
        description: spec.description,
        label_header,
        columns: spec.columns,
        sweep,
        variants,
    })
}

/// Lowers fault windows (kill time, outage length, servers) into an
/// ascending CPU-capacity delta timeline, rejecting schedules that would
/// kill more CPUs than are installed. The sort is stable, so a
/// zero-length outage restores immediately after its kill.
fn lower_fault_windows(
    windows: &[(f64, f64, u32)],
    sys: &SystemConfig,
) -> Result<Vec<(f64, i32)>, SpecError> {
    let mut deltas: Vec<(f64, i32)> = Vec::with_capacity(windows.len() * 2);
    for &(at_ms, duration_ms, cpus_down) in windows {
        let down = i32::try_from(cpus_down)
            .map_err(|_| SpecError::new("fault `cpus_down` too large"))?;
        deltas.push((at_ms, -down));
        deltas.push((at_ms + duration_ms, down));
    }
    deltas.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut level = i64::from(sys.cpus);
    for &(_, d) in &deltas {
        level += i64::from(d);
        if level < 0 {
            return Err(SpecError::new(format!(
                "faults kill more CPUs than installed ({} configured)",
                sys.cpus
            )));
        }
    }
    Ok(deltas)
}

/// Lowers the fault specs for one replication: fixed windows pass
/// through, repair-time distributions are sampled per fault from the
/// replication seed's dedicated `fault_repair` RNG substream (spec
/// order), so the schedule is fully determined by the recorded seed and
/// no other stream shifts.
fn lower_faults_for_seed(
    faults: &[FaultSpec],
    sys: &SystemConfig,
    seed: u64,
) -> Result<Vec<(f64, i32)>, SpecError> {
    use alc_des::dist::Sample as _;
    let mut rng = alc_des::rng::SeedFactory::new(seed).stream("fault_repair");
    let windows: Vec<(f64, f64, u32)> = faults
        .iter()
        .map(|f| {
            let duration = match &f.recovery {
                crate::spec::FaultRecovery::Fixed(d) => *d,
                // A pathological draw below zero clamps to an instant
                // repair (kill and restore at the same time, kill first).
                crate::spec::FaultRecovery::Repair(dist) => dist.sample(&mut rng).max(0.0),
            };
            (f.at_ms, duration, f.cpus_down)
        })
        .collect();
    lower_fault_windows(&windows, sys)
}

fn build_variant(
    spec: &ScenarioSpec,
    label: &str,
    base_dir: &Path,
) -> Result<VariantPlan, SpecError> {
    let mut sys: SystemConfig = from_overrides(&spec.system, "system")?;
    sys.seed = spec.seed;
    if sys.terminals == 0 {
        return Err(SpecError::new("system.terminals must be ≥ 1"));
    }
    let control: ControlConfig = from_overrides(&spec.control, "control")?;
    if control.sample_interval_ms <= 0.0 {
        return Err(SpecError::new("control.sample_interval_ms must be positive"));
    }
    let workload = spec.workload.lower(base_dir)?;
    let seeds: Vec<u64> = (0..spec.replications)
        .map(|r| replication_seed(spec.seed, r))
        .collect();
    let has_repair = spec
        .faults
        .iter()
        .any(|f| matches!(f.recovery, crate::spec::FaultRecovery::Repair(_)));
    let (faults, fault_schedules) = if has_repair {
        let per_rep = seeds
            .iter()
            .map(|&s| lower_faults_for_seed(&spec.faults, &sys, s))
            .collect::<Result<Vec<_>, _>>()?;
        (Vec::new(), Some(per_rep))
    } else {
        // Fixed windows never touch the RNG; any seed gives the shared
        // timeline.
        (lower_faults_for_seed(&spec.faults, &sys, spec.seed)?, None)
    };
    if let Some(clients) = &spec.clients {
        if !matches!(
            sys.arrival,
            alc_tpsim::config::ArrivalProcess::Closed
        ) {
            return Err(SpecError::new(
                "`clients` needs the closed arrival model (clients *are* the \
                 arrival process; drop `arrival`/`offered_load_per_s`)",
            ));
        }
        // Hedged pools need a second transaction slot per client for the
        // duplicate attempt.
        let per_client = if matches!(
            clients.retry,
            alc_tpsim::client::RetryPolicy::Hedged { .. }
        ) {
            2u64
        } else {
            1u64
        };
        if u64::from(clients.population) * per_client > u64::from(sys.terminals) {
            return Err(SpecError::new(format!(
                "`clients.population` needs {} terminal slot(s) but \
                 `system.terminals` is {}",
                u64::from(clients.population) * per_client,
                sys.terminals
            )));
        }
    }
    let cells = spec
        .inputs
        .iter()
        .find(|(name, _)| name == label)
        .map(|(_, cells)| cells.clone())
        .unwrap_or_default();
    let display_label = match &spec.label_from {
        Some(lf) => cells
            .iter()
            .find(|(col, _)| col == lf)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| label.to_string()),
        None => label.to_string(),
    };
    Ok(VariantPlan {
        label: label.to_string(),
        display_label,
        cells,
        sys,
        workload,
        cc: spec.cc,
        cc_switches: spec.cc_phases.clone(),
        adaptive_cc: spec.cc_adaptive.clone(),
        faults,
        fault_schedules,
        clients: spec.clients.clone(),
        control,
        controller: spec.controller.clone(),
        horizon_ms: spec.horizon_ms,
        seeds,
        record_optimum: spec.record_optimum,
        trajectories: spec.trajectories,
        keep_trajectories: spec.trajectories,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn parse(json: &str) -> Value {
        serde_json::from_str(json).unwrap()
    }

    #[test]
    fn compile_lowers_system_and_control() {
        let v = parse(
            r#"{
            "name": "c1", "horizon_ms": 5000.0, "seed": 7,
            "system": {"terminals": 30, "think": {"exponential": 250}},
            "control": {"sample_interval_ms": 500.0, "displacement": true},
            "workload": {"k": {"step": {"at": 2500.0, "before": 4, "after": 8}}},
            "controller": {"is": {"initial_bound": 5, "max_bound": 60}}
        }"#,
        );
        let plan = compile_value(&v, &PathBuf::from("."), false).unwrap();
        assert_eq!(plan.variants.len(), 1);
        let vp = &plan.variants[0];
        assert_eq!(vp.sys.terminals, 30);
        assert_eq!(vp.sys.seed, 7);
        assert_eq!(vp.sys.think, alc_des::dist::Dist::exponential(250.0));
        assert!(vp.control.displacement);
        assert_eq!(vp.workload.at(0.0).k, 4);
        assert_eq!(vp.workload.at(3000.0).k, 8);
        // Untouched fields keep SystemConfig defaults.
        assert_eq!(vp.sys.cpus, SystemConfig::default().cpus);
    }

    #[test]
    fn compile_is_deterministic() {
        let v = parse(
            r#"{
            "name": "det", "horizon_ms": 5000.0, "replications": 3,
            "workload": {"k": {"phases": [[0, 8], [2000.0, {"sinusoid":
                {"mean": 10, "amplitude": 4, "period": 1000.0}}]]}},
            "variants": [
                {"name": "a", "set": {"cc": "2pl"}},
                {"name": "b", "set": {"controller": {"pa": {}}}}
            ]
        }"#,
        );
        let p1 = compile_value(&v, &PathBuf::from("."), false).unwrap();
        let p2 = compile_value(&v, &PathBuf::from("."), false).unwrap();
        assert_eq!(p1, p2, "same spec must compile to the same plan");
        assert_eq!(p1.variants.len(), 2);
        assert_eq!(p1.variants[0].cc, CcKind::TwoPhaseLocking);
        assert!(matches!(
            p1.variants[1].controller,
            ControllerSpec::Pa(_)
        ));
        // Replication 0 uses the spec seed; later ones differ.
        let seeds = &p1.variants[0].seeds;
        assert_eq!(seeds.len(), 3);
        assert_eq!(seeds[0], SystemConfig::default().seed);
        assert_ne!(seeds[1], seeds[0]);
        assert_ne!(seeds[2], seeds[1]);
    }

    #[test]
    fn quick_overrides_apply_only_under_quick() {
        let v = parse(
            r#"{
            "name": "q", "horizon_ms": 100000.0,
            "system": {"terminals": 500},
            "quick": {"horizon_ms": 1000.0, "system.terminals": 40}
        }"#,
        );
        let full = compile_value(&v, &PathBuf::from("."), false).unwrap();
        assert_eq!(full.variants[0].horizon_ms, 100_000.0);
        assert_eq!(full.variants[0].sys.terminals, 500);
        let quick = compile_value(&v, &PathBuf::from("."), true).unwrap();
        assert_eq!(quick.variants[0].horizon_ms, 1_000.0);
        assert_eq!(quick.variants[0].sys.terminals, 40);
    }

    #[test]
    fn variant_set_typo_is_caught_by_strict_reparse() {
        let v = parse(
            r#"{
            "name": "t", "horizon_ms": 1000.0,
            "variants": [{"name": "bad", "set": {"controler": "unlimited"}}]
        }"#,
        );
        let err = compile_value(&v, &PathBuf::from("."), false).unwrap_err();
        assert!(
            err.to_string().contains("controler"),
            "unhelpful error: {err}"
        );
    }

    #[test]
    fn sweep_axis_targets_offered_load_in_tx_per_s() {
        // The ROADMAP item: load grids read in the paper's tx/s units;
        // each cell lowers to the matching interarrival mean.
        let v = parse(
            r#"{
            "name": "ol", "horizon_ms": 1000.0,
            "system": {"terminals": 60, "offered_load_per_s": 50},
            "sweep": {"axes": [{"header": "offered_tx_s",
                                "path": "system.offered_load_per_s",
                                "values": [50, 100, 250]}]}
        }"#,
        );
        let plan = compile_value(&v, &PathBuf::from("."), false).unwrap();
        assert_eq!(plan.variants.len(), 3);
        for (vp, rate) in plan.variants.iter().zip([50.0, 100.0, 250.0]) {
            let alc_tpsim::config::ArrivalProcess::Open { interarrival } = vp.sys.arrival
            else {
                panic!("cell must be open-mode");
            };
            assert_eq!(interarrival, alc_des::dist::Dist::exponential(1000.0 / rate));
        }
        assert_eq!(
            plan.variants.iter().map(|v| v.label.as_str()).collect::<Vec<_>>(),
            vec!["50", "100", "250"]
        );
    }

    #[test]
    fn repair_faults_sample_per_replication_deterministically() {
        let v = parse(
            r#"{
            "name": "rep", "horizon_ms": 60000.0, "replications": 3,
            "system": {"terminals": 10, "cpus": 4},
            "faults": [{"at": 10000.0, "repair": {"exponential": 5000}, "cpus_down": 2},
                       {"at": 30000.0, "duration": 2000.0, "cpus_down": 1}]
        }"#,
        );
        let a = compile_value(&v, &PathBuf::from("."), false).unwrap();
        let b = compile_value(&v, &PathBuf::from("."), false).unwrap();
        assert_eq!(a, b, "sampled repair times must be seed-deterministic");
        let vp = &a.variants[0];
        assert!(vp.faults.is_empty(), "repair faults move to per-rep timelines");
        let per_rep = vp.fault_schedules.as_ref().expect("per-rep timelines");
        assert_eq!(per_rep.len(), 3);
        for timeline in per_rep {
            assert_eq!(timeline.len(), 4);
            assert!(timeline.windows(2).all(|w| w[0].0 <= w[1].0));
            // The fixed window is identical in every replication.
            assert!(timeline.iter().any(|&(t, d)| t == 30_000.0 && d == -1));
            assert!(timeline.iter().any(|&(t, d)| t == 32_000.0 && d == 1));
        }
        // The sampled outage differs across replications (distinct seeds).
        let restore = |tl: &Vec<(f64, i32)>| {
            tl.iter()
                .find(|&&(t, d)| d == 2 && t != 32_000.0)
                .map(|&(t, _)| t)
                .expect("sampled restore edge")
        };
        assert_ne!(restore(&per_rep[0]), restore(&per_rep[1]));
    }

    #[test]
    fn fixed_analytic_optimum_resolves_against_workload() {
        let v = parse(
            r#"{
            "name": "fa", "horizon_ms": 1000.0,
            "system": {"terminals": 40, "cpus": 4, "db_size": 300},
            "controller": {"fixed_analytic_optimum": {"n_max": 60}}
        }"#,
        );
        let plan = compile_value(&v, &PathBuf::from("."), false).unwrap();
        let vp = &plan.variants[0];
        let ctrl = vp.controller.build(&vp.sys, &vp.workload).unwrap();
        let bound = ctrl.current_bound();
        assert!((2..=60).contains(&bound), "implausible optimum {bound}");
    }
}
