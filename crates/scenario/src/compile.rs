//! The spec → run-plan compiler.
//!
//! Compilation is *deterministic*: the same spec tree (plus the same
//! `--quick`/`--set` inputs and trace files) always lowers to the same
//! [`RunPlan`], and the plan fully determines every simulator run (all
//! randomness derives from the per-replication seeds recorded in it).
//!
//! Variants compile by cloning the spec's JSON tree, applying the
//! variant's `set` overrides (then the quick overrides under `--quick`)
//! and re-parsing — so a variant can change *anything* a spec can say,
//! from one control flag to the whole controller object.

use std::path::Path;

use alc_tpsim::config::{CcKind, ControlConfig, SystemConfig};
use alc_tpsim::workload::WorkloadConfig;
use serde::Value;

use crate::spec::{ControllerSpec, ScenarioSpec, StatColumn, VariantSpec};
use crate::value_util::{from_overrides, set_path};
use crate::SpecError;

/// A fully lowered scenario: everything the runner needs, nothing left
/// to resolve.
#[derive(Debug, Clone, PartialEq)]
pub struct RunPlan {
    /// Scenario id (CSV stem).
    pub name: String,
    /// Report title.
    pub description: String,
    /// Label column header.
    pub label_header: String,
    /// Stat columns of the report.
    pub columns: Vec<StatColumn>,
    /// One compiled variant per run group.
    pub variants: Vec<VariantPlan>,
}

/// One compiled variant: a concrete engine configuration plus its
/// replication seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantPlan {
    /// Variant label ("" for the implicit single variant).
    pub label: String,
    /// Physical system (seed field is per-replication; see `seeds`).
    pub sys: SystemConfig,
    /// Lowered time-varying workload.
    pub workload: WorkloadConfig,
    /// CC protocol.
    pub cc: CcKind,
    /// Measurement/control wiring.
    pub control: ControlConfig,
    /// Controller to instantiate per replication.
    pub controller: ControllerSpec,
    /// Simulated horizon, ms.
    pub horizon_ms: f64,
    /// Master seed per replication (replication 0 uses the spec seed).
    pub seeds: Vec<u64>,
    /// Record the analytic-optimum trajectory.
    pub record_optimum: bool,
    /// Write trajectory CSVs.
    pub trajectories: bool,
}

/// Derives the replication-`r` seed from the spec seed (replication 0 is
/// the spec seed itself, so single-replication scenarios reproduce the
/// bespoke figure runs exactly).
pub fn replication_seed(seed: u64, r: u32) -> u64 {
    seed.wrapping_add(u64::from(r).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Compiles a spec tree. `base_dir` resolves trace paths; `quick`
/// applies the spec's CI-scale overrides.
pub fn compile_value(base: &Value, base_dir: &Path, quick: bool) -> Result<RunPlan, SpecError> {
    let spec = ScenarioSpec::from_value(base)?;
    let implicit;
    let variant_specs: &[VariantSpec] = if spec.variants.is_empty() {
        implicit = [VariantSpec {
            name: String::new(),
            set: Vec::new(),
            quick: Vec::new(),
        }];
        &implicit
    } else {
        &spec.variants
    };

    let mut variants = Vec::with_capacity(variant_specs.len());
    for vs in variant_specs {
        let mut tree = base.clone();
        for (path, val) in &vs.set {
            set_path(&mut tree, path, val.clone())
                .map_err(|e| e.context(format!("variant `{}`", vs.name)))?;
        }
        if quick {
            for (path, val) in &spec.quick {
                set_path(&mut tree, path, val.clone())
                    .map_err(|e| e.context("quick overrides"))?;
            }
            for (path, val) in &vs.quick {
                set_path(&mut tree, path, val.clone())
                    .map_err(|e| e.context(format!("variant `{}` quick", vs.name)))?;
            }
        }
        let vspec = ScenarioSpec::from_value(&tree)
            .map_err(|e| e.context(format!("variant `{}`", vs.name)))?;
        variants.push(build_variant(&vspec, &vs.name, base_dir)?);
    }

    Ok(RunPlan {
        name: spec.name,
        description: spec.description,
        label_header: spec.label_header,
        columns: spec.columns,
        variants,
    })
}

fn build_variant(
    spec: &ScenarioSpec,
    label: &str,
    base_dir: &Path,
) -> Result<VariantPlan, SpecError> {
    let mut sys: SystemConfig = from_overrides(&spec.system, "system")?;
    sys.seed = spec.seed;
    if sys.terminals == 0 {
        return Err(SpecError::new("system.terminals must be ≥ 1"));
    }
    let control: ControlConfig = from_overrides(&spec.control, "control")?;
    if control.sample_interval_ms <= 0.0 {
        return Err(SpecError::new("control.sample_interval_ms must be positive"));
    }
    let workload = spec.workload.lower(base_dir)?;
    let seeds = (0..spec.replications)
        .map(|r| replication_seed(spec.seed, r))
        .collect();
    Ok(VariantPlan {
        label: label.to_string(),
        sys,
        workload,
        cc: spec.cc,
        control,
        controller: spec.controller.clone(),
        horizon_ms: spec.horizon_ms,
        seeds,
        record_optimum: spec.record_optimum,
        trajectories: spec.trajectories,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn parse(json: &str) -> Value {
        serde_json::from_str(json).unwrap()
    }

    #[test]
    fn compile_lowers_system_and_control() {
        let v = parse(
            r#"{
            "name": "c1", "horizon_ms": 5000.0, "seed": 7,
            "system": {"terminals": 30, "think": {"exponential": 250}},
            "control": {"sample_interval_ms": 500.0, "displacement": true},
            "workload": {"k": {"step": {"at": 2500.0, "before": 4, "after": 8}}},
            "controller": {"is": {"initial_bound": 5, "max_bound": 60}}
        }"#,
        );
        let plan = compile_value(&v, &PathBuf::from("."), false).unwrap();
        assert_eq!(plan.variants.len(), 1);
        let vp = &plan.variants[0];
        assert_eq!(vp.sys.terminals, 30);
        assert_eq!(vp.sys.seed, 7);
        assert_eq!(vp.sys.think, alc_des::dist::Dist::exponential(250.0));
        assert!(vp.control.displacement);
        assert_eq!(vp.workload.at(0.0).k, 4);
        assert_eq!(vp.workload.at(3000.0).k, 8);
        // Untouched fields keep SystemConfig defaults.
        assert_eq!(vp.sys.cpus, SystemConfig::default().cpus);
    }

    #[test]
    fn compile_is_deterministic() {
        let v = parse(
            r#"{
            "name": "det", "horizon_ms": 5000.0, "replications": 3,
            "workload": {"k": {"phases": [[0, 8], [2000.0, {"sinusoid":
                {"mean": 10, "amplitude": 4, "period": 1000.0}}]]}},
            "variants": [
                {"name": "a", "set": {"cc": "2pl"}},
                {"name": "b", "set": {"controller": {"pa": {}}}}
            ]
        }"#,
        );
        let p1 = compile_value(&v, &PathBuf::from("."), false).unwrap();
        let p2 = compile_value(&v, &PathBuf::from("."), false).unwrap();
        assert_eq!(p1, p2, "same spec must compile to the same plan");
        assert_eq!(p1.variants.len(), 2);
        assert_eq!(p1.variants[0].cc, CcKind::TwoPhaseLocking);
        assert!(matches!(
            p1.variants[1].controller,
            ControllerSpec::Pa(_)
        ));
        // Replication 0 uses the spec seed; later ones differ.
        let seeds = &p1.variants[0].seeds;
        assert_eq!(seeds.len(), 3);
        assert_eq!(seeds[0], SystemConfig::default().seed);
        assert_ne!(seeds[1], seeds[0]);
        assert_ne!(seeds[2], seeds[1]);
    }

    #[test]
    fn quick_overrides_apply_only_under_quick() {
        let v = parse(
            r#"{
            "name": "q", "horizon_ms": 100000.0,
            "system": {"terminals": 500},
            "quick": {"horizon_ms": 1000.0, "system.terminals": 40}
        }"#,
        );
        let full = compile_value(&v, &PathBuf::from("."), false).unwrap();
        assert_eq!(full.variants[0].horizon_ms, 100_000.0);
        assert_eq!(full.variants[0].sys.terminals, 500);
        let quick = compile_value(&v, &PathBuf::from("."), true).unwrap();
        assert_eq!(quick.variants[0].horizon_ms, 1_000.0);
        assert_eq!(quick.variants[0].sys.terminals, 40);
    }

    #[test]
    fn variant_set_typo_is_caught_by_strict_reparse() {
        let v = parse(
            r#"{
            "name": "t", "horizon_ms": 1000.0,
            "variants": [{"name": "bad", "set": {"controler": "unlimited"}}]
        }"#,
        );
        let err = compile_value(&v, &PathBuf::from("."), false).unwrap_err();
        assert!(
            err.to_string().contains("controler"),
            "unhelpful error: {err}"
        );
    }

    #[test]
    fn fixed_analytic_optimum_resolves_against_workload() {
        let v = parse(
            r#"{
            "name": "fa", "horizon_ms": 1000.0,
            "system": {"terminals": 40, "cpus": 4, "db_size": 300},
            "controller": {"fixed_analytic_optimum": {"n_max": 60}}
        }"#,
        );
        let plan = compile_value(&v, &PathBuf::from("."), false).unwrap();
        let vp = &plan.variants[0];
        let ctrl = vp.controller.build(&vp.sys, &vp.workload).unwrap();
        let bound = ctrl.current_bound();
        assert!((2..=60).contains(&bound), "implausible optimum {bound}");
    }
}
