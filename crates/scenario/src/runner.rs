//! The scenario runner: executes a compiled [`RunPlan`] and emits the
//! existing report/CSV artifacts.
//!
//! All `(variant, replication)` cells are independent simulator runs, so
//! they fan out with `rayon` and are collected in input order — parallel
//! execution is byte-identical to serial (each run is fully determined
//! by its recorded seed). Trajectory CSVs use the same column set and
//! naming convention as the bespoke figure generators
//! (`<name>[_<variant>]_trajectory.csv`, columns `bound, observed_mpl,
//! throughput, optimum, k`), which is what lets the golden port tests
//! pin the ported scenarios byte-for-byte against the pre-port outputs.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use alc_bench::report::Report;
use alc_core::gatelog::{GateEvent, GateLogSink};
use alc_des::series::write_aligned_csv;
use alc_runtime::{write_gate_log, GateLogHeader};
use alc_tpsim::config::SystemConfig;
use alc_tpsim::engine::{RunStats, Simulator, Trajectories};
use rayon::prelude::*;

use crate::compile::{RunPlan, SweepPlan, VariantPlan};
use crate::spec::ColumnSpec;

/// The outcome of one `(variant, replication)` cell.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Variant label ("" for the implicit variant).
    pub label: String,
    /// Replication index.
    pub replication: u32,
    /// Seed the run used.
    pub seed: u64,
    /// Aggregate statistics.
    pub stats: RunStats,
    /// Client-pool counters (when the plan has a `clients` section).
    pub clients: Option<alc_tpsim::ClientStats>,
    /// Recorded trajectories (when the plan asked for them).
    pub trajectories: Option<Trajectories>,
}

/// Where and how to capture gate logs while running a plan.
#[derive(Debug, Clone)]
pub struct GateLogRequest {
    /// Directory receiving one `<stem>_gatelog.jsonl` per cell.
    pub dir: PathBuf,
    /// Recorded in each log's header: whether the plan was compiled with
    /// the spec's quick (CI-scale) overrides.
    pub quick: bool,
}

/// The gate-log file name of one `(variant, replication)` cell:
/// `<name>[_<variant>][_rep<r>]_gatelog.jsonl` — same stem convention
/// as the trajectory CSVs.
pub fn gate_log_file_name(plan: &RunPlan, v: &VariantPlan, rep: u32) -> String {
    let mut stem = plan.name.clone();
    if !v.label.is_empty() {
        stem.push('_');
        stem.push_str(&v.label);
    }
    if v.seeds.len() > 1 {
        stem.push_str(&format!("_rep{rep}"));
    }
    format!("{stem}_gatelog.jsonl")
}

/// A [`GateLogSink`] buffering events behind a shared handle, so the
/// runner can keep them after the simulator consumes the boxed sink.
struct CaptureSink(Arc<Mutex<Vec<GateEvent>>>);

impl GateLogSink for CaptureSink {
    fn record(&mut self, event: &GateEvent) {
        if let Ok(mut events) = self.0.lock() {
            events.push(event.clone());
        }
    }
}

/// Executes one cell of a plan, optionally capturing its gate log.
fn run_one(
    plan: &RunPlan,
    v: &VariantPlan,
    rep: usize,
    gate_log: Option<&GateLogRequest>,
) -> std::io::Result<RunRecord> {
    let seed = v.seeds[rep];
    let sys = SystemConfig { seed, ..v.sys };
    let controller = v.controller.build(&sys, &v.workload);
    let mut sim = Simulator::new(sys, v.workload.clone(), v.cc, v.control, controller);
    sim.set_record_optimum(v.record_optimum);
    if !v.cc_switches.is_empty() {
        sim.set_cc_switches(&v.cc_switches);
    }
    if let Some(adaptive) = &v.adaptive_cc {
        let (candidates, policy) = adaptive.build();
        sim.set_adaptive_cc(candidates, policy);
    }
    let faults = v
        .fault_schedules
        .as_ref()
        .map_or(&v.faults, |per_rep| &per_rep[rep]);
    if !faults.is_empty() {
        sim.set_faults(faults);
    }
    if let Some(clients) = &v.clients {
        sim.set_clients(clients.clone());
    }
    let captured = gate_log.map(|req| {
        let events = Arc::new(Mutex::new(Vec::new()));
        sim.set_gate_log(Box::new(CaptureSink(Arc::clone(&events))));
        (req, events)
    });
    let stats = sim.run(v.horizon_ms);
    if let Some((req, events)) = captured {
        let header = GateLogHeader {
            scenario: plan.name.clone(),
            variant: v.label.clone(),
            replication: rep as u32,
            seed,
            quick: req.quick,
        };
        let events = events.lock().map_or_else(|e| e.into_inner().clone(), |g| g.clone());
        let path = req.dir.join(gate_log_file_name(plan, v, rep as u32));
        let f = std::fs::File::create(path)?;
        write_gate_log(std::io::BufWriter::new(f), &header, &events)?;
    }
    Ok(RunRecord {
        label: v.label.clone(),
        replication: rep as u32,
        seed,
        stats,
        clients: sim.client_stats(),
        trajectories: v.keep_trajectories.then(|| sim.trajectories().clone()),
    })
}

/// Runs every `(variant, replication)` cell of the plan in parallel and
/// returns the records in deterministic (variant-major) order.
pub fn run_plan(plan: &RunPlan) -> Vec<RunRecord> {
    // Without a capture request run_one performs no I/O.
    run_plan_logged(plan, None).expect("gate-log capture disabled; no I/O to fail")
}

/// [`run_plan`], optionally capturing one gate log per cell into
/// `gate_log.dir` (created if absent). Each log carries a header naming
/// its `(scenario, variant, replication, seed, quick)` provenance so
/// `scenario replay` can rebuild the matching controller.
pub fn run_plan_logged(
    plan: &RunPlan,
    gate_log: Option<&GateLogRequest>,
) -> std::io::Result<Vec<RunRecord>> {
    if let Some(req) = gate_log {
        std::fs::create_dir_all(&req.dir)?;
    }
    let jobs: Vec<(usize, usize)> = plan
        .variants
        .iter()
        .enumerate()
        .flat_map(|(vi, v)| (0..v.seeds.len()).map(move |r| (vi, r)))
        .collect();
    jobs.par_iter()
        .map(|&(vi, r)| run_one(plan, &plan.variants[vi], r, gate_log))
        .collect()
}

/// The stem of a record's trajectory CSV (without the `_trajectory.csv`
/// suffix): `<name>`, `<name>_<variant>`, plus `_rep<r>` when the plan
/// replicates.
fn trajectory_stem(plan: &RunPlan, rec: &RunRecord, replications: usize) -> String {
    let mut stem = plan.name.clone();
    if !rec.label.is_empty() {
        stem.push('_');
        stem.push_str(&rec.label);
    }
    if replications > 1 {
        stem.push_str(&format!("_rep{}", rec.replication));
    }
    stem
}

/// Writes the trajectory CSVs of `records` into `dir` (same format as
/// the figure generators) and returns the file names written.
pub fn write_trajectories(
    plan: &RunPlan,
    records: &[RunRecord],
    dir: &Path,
) -> std::io::Result<Vec<String>> {
    let mut written = Vec::new();
    std::fs::create_dir_all(dir)?;
    for rec in records {
        let Some(traj) = &rec.trajectories else {
            continue;
        };
        // Records may retain trajectories solely for derived columns;
        // only variants that asked for trajectory output get files.
        let variant = plan.variants.iter().find(|v| v.label == rec.label);
        if !variant.is_some_and(|v| v.trajectories) {
            continue;
        }
        let reps = variant.map_or(1, |v| v.seeds.len());
        let name = format!("{}_trajectory.csv", trajectory_stem(plan, rec, reps));
        let f = std::fs::File::create(dir.join(&name))?;
        write_aligned_csv(
            std::io::BufWriter::new(f),
            &[
                &traj.bound,
                &traj.observed_mpl,
                &traj.throughput,
                &traj.optimum,
                &traj.k,
            ],
        )?;
        written.push(name);
        // The switch-event trace rides along for runs that actually
        // switched protocols (scheduled phases or adaptive selection);
        // single-protocol runs keep their exact pre-meta file set.
        if !traj.switches.is_empty() {
            let name = format!("{}_switches.csv", trajectory_stem(plan, rec, reps));
            let mut out = String::from("decided_at_ms,completed_at_ms,from,to\n");
            for e in &traj.switches {
                use std::fmt::Write as _;
                let _ = writeln!(
                    out,
                    "{},{},{},{}",
                    e.decided_at_ms,
                    e.completed_at_ms,
                    crate::spec::cc_spec_name(e.from),
                    crate::spec::cc_spec_name(e.to)
                );
            }
            std::fs::write(dir.join(&name), out)?;
            written.push(name);
        }
        // Client runs ride a `_clients.csv` along: per-interval attempt /
        // retry / abandonment deltas. Clientless runs keep their exact
        // pre-client file set.
        if !traj.attempts.is_empty() {
            let name = format!("{}_clients.csv", trajectory_stem(plan, rec, reps));
            let f = std::fs::File::create(dir.join(&name))?;
            write_aligned_csv(
                std::io::BufWriter::new(f),
                &[&traj.attempts, &traj.retries, &traj.abandons],
            )?;
            written.push(name);
        }
    }
    Ok(written)
}

/// Formats one report cell for a record.
fn format_cell(col: &ColumnSpec, v: &VariantPlan, rec: &RunRecord) -> String {
    match col {
        ColumnSpec::Stat(c) => c.format(&rec.stats),
        ColumnSpec::Client(c) => c.format(rec.clients.as_ref(), rec.stats.duration_ms),
        ColumnSpec::Derived(d) => {
            let traj = rec
                .trajectories
                .as_ref()
                .expect("derived columns force trajectory retention at compile time");
            d.format(traj, v.horizon_ms, v.cc)
        }
        ColumnSpec::Input(name) => v
            .cells
            .iter()
            .find(|(col, _)| col == name)
            .map(|(_, val)| val.clone())
            .unwrap_or_else(|| "-".to_string()),
        ColumnSpec::Literal { value, .. } => value.clone(),
    }
}

/// Builds the report table from a finished run: one row per record, or
/// the grid/pivot layout for sweep plans.
pub fn build_report(plan: &RunPlan, records: &[RunRecord]) -> Report {
    if let Some(sweep) = &plan.sweep {
        return build_sweep_report(plan, sweep, records);
    }
    let mut headers: Vec<String> = vec![plan.label_header.clone()];
    headers.extend(plan.columns.iter().map(|c| c.header()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut report = Report::new(&plan.name, &plan.description, &header_refs);
    let multi_rep = plan.variants.iter().any(|v| v.seeds.len() > 1);
    for rec in records {
        let variant = plan
            .variants
            .iter()
            .find(|v| v.label == rec.label)
            .expect("record label must come from the plan");
        let mut label = if variant.display_label.is_empty() {
            "run".to_string()
        } else {
            variant.display_label.clone()
        };
        if multi_rep {
            label.push_str(&format!("#{}", rec.replication));
        }
        let mut row = vec![label];
        row.extend(plan.columns.iter().map(|c| format_cell(c, variant, rec)));
        report.push_row(row);
    }
    report
}

/// Sweep layouts. Without a pivot: one row per record, leading columns
/// are the axis labels (the long-format load–throughput curve CSV). With
/// a pivot: rows iterate the non-pivot axes, the last axis becomes one
/// column per value showing the pivot stat.
fn build_sweep_report(plan: &RunPlan, sweep: &SweepPlan, records: &[RunRecord]) -> Report {
    let mut headers: Vec<String> = Vec::new();
    let n_axes = sweep.axes.len();
    match &sweep.pivot {
        None => {
            headers.extend(sweep.axes.iter().map(|(h, _)| h.clone()));
            headers.extend(plan.columns.iter().map(|c| c.header()));
            let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut report = Report::new(&plan.name, &plan.description, &header_refs);
            let multi_rep = plan.variants.iter().any(|v| v.seeds.len() > 1);
            // Records are (cell, replication) in plan order; recover the
            // cell index from the variant list.
            let mut rec_iter = records.iter();
            for (cell, variant) in plan.variants.iter().enumerate() {
                let coords = sweep.coords(cell);
                for _ in 0..variant.seeds.len() {
                    let rec = rec_iter.next().expect("one record per (cell, rep)");
                    let mut row: Vec<String> = coords
                        .iter()
                        .enumerate()
                        .map(|(a, &c)| sweep.axes[a].1[c].clone())
                        .collect();
                    if multi_rep {
                        row[0].push_str(&format!("#{}", rec.replication));
                    }
                    row.extend(plan.columns.iter().map(|c| format_cell(c, variant, rec)));
                    report.push_row(row);
                }
            }
            report
        }
        Some((stat, prefix)) => {
            // Pivoted: replications are forced to 1 at parse time, so
            // records index exactly as cells.
            headers.extend(sweep.axes[..n_axes - 1].iter().map(|(h, _)| h.clone()));
            let pivot_labels = &sweep.axes[n_axes - 1].1;
            headers.extend(pivot_labels.iter().map(|l| format!("{prefix}{l}")));
            let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut report = Report::new(&plan.name, &plan.description, &header_refs);
            let n_cols = pivot_labels.len();
            let n_rows = plan.variants.len() / n_cols.max(1);
            for r in 0..n_rows {
                let coords = sweep.coords(r * n_cols);
                let mut row: Vec<String> = coords[..n_axes - 1]
                    .iter()
                    .enumerate()
                    .map(|(a, &c)| sweep.axes[a].1[c].clone())
                    .collect();
                for c in 0..n_cols {
                    row.push(stat.format(&records[r * n_cols + c].stats));
                }
                report.push_row(row);
            }
            report
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_value;
    use std::path::PathBuf;

    fn quick_plan(json: &str) -> RunPlan {
        let v: serde::Value = serde_json::from_str(json).unwrap();
        compile_value(&v, &PathBuf::from("."), false).unwrap()
    }

    #[test]
    fn run_plan_is_deterministic_and_ordered() {
        let plan = quick_plan(
            r#"{
            "name": "rdet", "horizon_ms": 6000.0, "replications": 2,
            "system": {"terminals": 20, "cpus": 4, "db_size": 300,
                       "think": {"exponential": 200}},
            "control": {"sample_interval_ms": 500.0, "warmup_ms": 1000.0},
            "controller": {"is": {"initial_bound": 5, "max_bound": 40}},
            "variants": [
                {"name": "cert", "set": {"cc": "certification"}},
                {"name": "2pl", "set": {"cc": "2pl"}}
            ]
        }"#,
        );
        let a = run_plan(&plan);
        let b = run_plan(&plan);
        assert_eq!(a.len(), 4);
        let order: Vec<(String, u32)> = a
            .iter()
            .map(|r| (r.label.clone(), r.replication))
            .collect();
        assert_eq!(
            order,
            vec![
                ("cert".to_string(), 0),
                ("cert".to_string(), 1),
                ("2pl".to_string(), 0),
                ("2pl".to_string(), 1)
            ]
        );
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.stats, y.stats, "{}#{}", x.label, x.replication);
        }
        // Replications use distinct seeds and realize differently.
        assert_ne!(a[0].seed, a[1].seed);
        assert_ne!(a[0].stats, a[1].stats);
        assert!(a.iter().all(|r| r.stats.commits > 0));
    }

    #[test]
    fn report_and_trajectories_are_emitted() {
        let plan = quick_plan(
            r#"{
            "name": "remit", "horizon_ms": 5000.0,
            "system": {"terminals": 15, "cpus": 4, "db_size": 300,
                       "think": {"exponential": 200}},
            "control": {"sample_interval_ms": 500.0, "warmup_ms": 0.0},
            "controller": {"is": {"initial_bound": 5, "max_bound": 40}},
            "record_optimum": true,
            "trajectories": true,
            "columns": ["throughput_per_s", "commits"]
        }"#,
        );
        let records = run_plan(&plan);
        let report = build_report(&plan, &records);
        assert_eq!(report.headers, vec!["variant", "throughput_per_s", "commits"]);
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0][0], "run");

        let dir = std::env::temp_dir().join("alc_scenario_runner_test");
        let _ = std::fs::remove_dir_all(&dir);
        let written = write_trajectories(&plan, &records, &dir).unwrap();
        assert_eq!(written, vec!["remit_trajectory.csv".to_string()]);
        let text = std::fs::read_to_string(dir.join("remit_trajectory.csv")).unwrap();
        assert!(text.starts_with("t_ms,bound,observed_mpl,throughput,optimum,k\n"));
        assert!(text.lines().count() > 5);
    }
}
