//! `scenario report --html` — a dependency-free static dashboard.
//!
//! One self-contained HTML page per plan: the report's summary table
//! and notes, then per-cell inline-SVG sparklines of the recorded
//! trajectories (bound, observed MPL, throughput) with CC-switch and
//! fault markers overlaid. Everything is rendered from the same
//! [`RunRecord`]s the CSV artifacts come from, with `f64` formatting
//! through `Display` (shortest round-trip), so the page is
//! byte-deterministic for a given plan.

use std::fmt::Write as _;

use alc_bench::report::Report;
use alc_des::series::TimeSeries;

use crate::compile::{RunPlan, VariantPlan};
use crate::runner::RunRecord;

/// Sparkline canvas width, px.
const SVG_W: f64 = 560.0;
/// Sparkline canvas height, px.
const SVG_H: f64 = 96.0;
/// Padding inside the canvas, px.
const PAD: f64 = 4.0;

/// Escapes text for HTML body and attribute positions.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(ch),
        }
    }
    out
}

/// A vertical event marker on a sparkline.
struct Marker {
    at_ms: f64,
    class: &'static str,
    label: String,
}

/// Renders one series as an inline SVG sparkline with markers.
fn sparkline(out: &mut String, title: &str, series: &TimeSeries, markers: &[Marker]) {
    let pts = series.points();
    if pts.is_empty() {
        return;
    }
    let (t0, t1) = (pts[0].0, pts[pts.len() - 1].0.max(pts[0].0 + 1.0));
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &(_, v) in pts {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if hi <= lo {
        hi = lo + 1.0;
    }
    let x = |t: f64| PAD + (t - t0) / (t1 - t0) * (SVG_W - 2.0 * PAD);
    let y = |v: f64| SVG_H - PAD - (v - lo) / (hi - lo) * (SVG_H - 2.0 * PAD);
    let _ = write!(
        out,
        "<figure><figcaption>{} <span class=\"range\">[{lo} .. {hi}]</span></figcaption>\
         <svg viewBox=\"0 0 {SVG_W} {SVG_H}\" width=\"{SVG_W}\" height=\"{SVG_H}\" \
         role=\"img\" aria-label=\"{}\">",
        escape(title),
        escape(title)
    );
    for m in markers {
        if m.at_ms < t0 || m.at_ms > t1 {
            continue;
        }
        let mx = x(m.at_ms);
        let _ = write!(
            out,
            "<line class=\"{}\" x1=\"{mx}\" y1=\"0\" x2=\"{mx}\" y2=\"{SVG_H}\">\
             <title>{}</title></line>",
            m.class,
            escape(&m.label)
        );
    }
    out.push_str("<polyline fill=\"none\" class=\"series\" points=\"");
    for (i, &(t, v)) in pts.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        let _ = write!(out, "{},{}", x(t), y(v));
    }
    out.push_str("\"/></svg></figure>\n");
}

/// The markers of one cell: completed CC switches and capacity faults.
fn cell_markers(v: &VariantPlan, rec: &RunRecord) -> Vec<Marker> {
    let mut markers = Vec::new();
    if let Some(traj) = &rec.trajectories {
        for e in &traj.switches {
            markers.push(Marker {
                at_ms: e.completed_at_ms,
                class: "switch",
                label: format!(
                    "switch {} -> {} @ {}ms",
                    crate::spec::cc_spec_name(e.from),
                    crate::spec::cc_spec_name(e.to),
                    e.completed_at_ms
                ),
            });
        }
    }
    let faults = v
        .fault_schedules
        .as_ref()
        .map_or(&v.faults, |per_rep| &per_rep[rec.replication as usize]);
    for &(at_ms, delta) in faults {
        markers.push(Marker {
            at_ms,
            class: "fault",
            label: format!("fault {delta:+} cpus @ {at_ms}ms"),
        });
    }
    markers
}

/// Renders the whole dashboard page.
pub fn render_dashboard(plan: &RunPlan, records: &[RunRecord], report: &Report) -> String {
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n");
    let _ = writeln!(out, "<title>{}</title>", escape(&plan.name));
    out.push_str(
        "<style>\n\
         body{font:14px/1.45 system-ui,sans-serif;margin:2rem auto;max-width:72rem;\
         padding:0 1rem;color:#1b1f24}\n\
         h1{font-size:1.5rem} h2{font-size:1.1rem;margin-top:2rem;\
         border-top:1px solid #d0d7de;padding-top:1rem}\n\
         table{border-collapse:collapse;margin:1rem 0}\n\
         th,td{border:1px solid #d0d7de;padding:0.3rem 0.6rem;text-align:right}\n\
         th:first-child,td:first-child{text-align:left}\n\
         figure{display:inline-block;margin:0.5rem 1rem 0.5rem 0}\n\
         figcaption{font-size:0.8rem;color:#57606a}\n\
         .range{color:#8c959f}\n\
         svg{background:#f6f8fa;border:1px solid #d0d7de}\n\
         .series{stroke:#0969da;stroke-width:1.5}\n\
         .switch{stroke:#bc4c00;stroke-width:1;stroke-dasharray:3 2}\n\
         .fault{stroke:#cf222e;stroke-width:1;stroke-dasharray:1 2}\n\
         .notes li{margin:0.25rem 0}\n\
         </style></head><body>\n",
    );
    let _ = writeln!(out, "<h1>{}</h1>", escape(&plan.name));
    let _ = writeln!(out, "<p>{}</p>", escape(&plan.description));

    out.push_str("<h2>Summary</h2>\n<table><thead><tr>");
    for h in &report.headers {
        let _ = write!(out, "<th>{}</th>", escape(h));
    }
    out.push_str("</tr></thead><tbody>\n");
    for row in &report.rows {
        out.push_str("<tr>");
        for cell in row {
            let _ = write!(out, "<td>{}</td>", escape(cell));
        }
        out.push_str("</tr>\n");
    }
    out.push_str("</tbody></table>\n");
    if !report.notes.is_empty() {
        out.push_str("<ul class=\"notes\">\n");
        for note in &report.notes {
            let _ = writeln!(out, "<li>{}</li>", escape(note));
        }
        out.push_str("</ul>\n");
    }

    for rec in records {
        let Some(traj) = &rec.trajectories else {
            continue;
        };
        let Some(v) = plan.variants.iter().find(|v| v.label == rec.label) else {
            continue;
        };
        let mut heading = if rec.label.is_empty() {
            plan.name.clone()
        } else {
            rec.label.clone()
        };
        if v.seeds.len() > 1 {
            let _ = write!(heading, " (rep {})", rec.replication);
        }
        let _ = writeln!(
            out,
            "<h2>{} <span class=\"range\">seed {}</span></h2>",
            escape(&heading),
            rec.seed
        );
        let markers = cell_markers(v, rec);
        sparkline(&mut out, "MPL bound n*(t)", &traj.bound, &markers);
        sparkline(&mut out, "observed MPL n(t)", &traj.observed_mpl, &markers);
        sparkline(&mut out, "throughput (commits/s)", &traj.throughput, &markers);
        if !traj.optimum.is_empty() {
            sparkline(&mut out, "analytic optimum n_opt(t)", &traj.optimum, &markers);
        }
        if !traj.abandons.is_empty() {
            sparkline(&mut out, "abandonments per interval", &traj.abandons, &markers);
        }
    }

    out.push_str("</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_value;
    use crate::runner::run_plan;

    #[test]
    fn dashboard_renders_deterministically() {
        let tree: serde::Value = serde_json::from_str(
            r#"{
            "name": "dash-unit", "horizon_ms": 5000.0, "seed": 3,
            "system": {"terminals": 20, "think": {"exponential": 250}},
            "control": {"sample_interval_ms": 500.0, "warmup_ms": 1000.0},
            "workload": {"k": 4},
            "controller": {"is": {"initial_bound": 5, "max_bound": 40}},
            "trajectories": true,
            "faults": [{"at": 2000.0, "duration": 1500.0, "cpus_down": 1}]
        }"#,
        )
        .unwrap();
        let mut plan = compile_value(&tree, std::path::Path::new("."), false).unwrap();
        for v in &mut plan.variants {
            v.keep_trajectories = true;
        }
        let records = run_plan(&plan);
        let report = crate::runner::build_report(&plan, &records);
        let a = render_dashboard(&plan, &records, &report);
        let b = render_dashboard(&plan, &records, &report);
        assert_eq!(a, b, "rendering is deterministic");
        assert!(a.contains("<svg"), "page carries inline SVG sparklines");
        assert!(a.contains("class=\"fault\""), "fault markers rendered");
        assert!(a.contains("dash-unit"), "plan name present");
        assert!(!a.contains("<script"), "dashboard is script-free");
    }

    #[test]
    fn escape_neutralizes_markup() {
        assert_eq!(escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
    }
}
