//! Replaying captured gate logs through the runtime: the simulator as
//! the runtime's conformance harness.
//!
//! `scenario run --gate-log DIR` captures every sampler-visible event of
//! a simulated run (MPL changes, commits, aborts, controller decisions)
//! as a JSONL gate log with a provenance header. [`replay_log`] rebuilds
//! the variant's controller from the spec, wraps it in the runtime's
//! `PaperLaw`, feeds the log's event stream through `alc_runtime`'s
//! `LoopCore`, and requires the re-derived decision sequence to match
//! the recorded one byte-for-byte. Any drift between the runtime's
//! telemetry/control path and the simulator's — a rounding mode, an
//! event-ordering change, a sampler-epoch mismatch — snaps the pin.

use std::path::Path;

use alc_runtime::{check_conformance, Conformance, PaperLaw};
use alc_tpsim::config::SystemConfig;

use crate::{LoadedSpec, SpecError};

/// The result of replaying one captured gate log against its spec.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Scenario name from the log header.
    pub scenario: String,
    /// Variant label from the log header ("" for the implicit variant).
    pub variant: String,
    /// Replication index from the log header.
    pub replication: u32,
    /// Number of recorded controller decisions.
    pub decisions: usize,
    /// The byte-level comparison of recorded vs replayed decisions.
    pub conformance: Conformance,
}

/// Replays a captured gate log against the spec it was recorded from.
///
/// The log's header names `(scenario, variant, replication, seed,
/// quick)`; the spec is compiled at the recorded scale, the matching
/// variant's controller is rebuilt exactly as the runner built it, and
/// the event stream is replayed through the runtime's control core.
pub fn replay_log(spec: &LoadedSpec, log_path: &Path) -> Result<ReplayOutcome, SpecError> {
    let file = std::fs::File::open(log_path)
        .map_err(|e| SpecError::new(format!("cannot open `{}`: {e}", log_path.display())))?;
    let (header, events) = alc_runtime::read_gate_log(std::io::BufReader::new(file))
        .map_err(|e| SpecError::new(format!("`{}`: {e}", log_path.display())))?;
    let header = header.ok_or_else(|| {
        SpecError::new(format!(
            "`{}` has no header line; only logs captured by `scenario run --gate-log` replay",
            log_path.display()
        ))
    })?;
    let plan = spec.compile(header.quick)?;
    if plan.name != header.scenario {
        return Err(SpecError::new(format!(
            "log was captured from scenario `{}`, spec compiles to `{}`",
            header.scenario, plan.name
        )));
    }
    let v = plan
        .variants
        .iter()
        .find(|v| v.label == header.variant)
        .ok_or_else(|| {
            SpecError::new(format!(
                "log names variant `{}`, which the spec no longer has",
                header.variant
            ))
        })?;
    let expected_seed = v.seeds.get(header.replication as usize).copied();
    if expected_seed != Some(header.seed) {
        return Err(SpecError::new(format!(
            "log was captured with seed {} for replication {}, spec now yields {:?}",
            header.seed, header.replication, expected_seed
        )));
    }
    let sys = SystemConfig {
        seed: header.seed,
        ..v.sys
    };
    // A retry-budget variant replays through the runtime's *own*
    // `RetryBudgetLaw`, not the simulator controller wrapped in
    // `PaperLaw` — the byte pin then proves the two implementations are
    // the same decision function, not merely that one replays itself.
    let law: Box<dyn alc_runtime::ControlLaw> =
        if let crate::spec::ControllerSpec::RetryBudget(p) = &v.controller {
            Box::new(alc_runtime::RetryBudgetLaw::new(alc_runtime::RetryBudgetParams {
                initial_bound: p.initial_bound,
                min_bound: p.min_bound,
                max_bound: p.max_bound,
                budget: p.budget,
                burst: p.burst,
                increase: p.increase,
                decrease: p.decrease,
                headroom: p.headroom,
            }))
        } else {
            let controller = v.controller.build(&sys, &v.workload).ok_or_else(|| {
                SpecError::new(format!(
                    "variant `{}` runs without a controller; there are no decisions to replay",
                    header.variant
                ))
            })?;
            Box::new(PaperLaw::new(controller))
        };
    let conformance = check_conformance(&events, law, v.control.indicator);
    Ok(ReplayOutcome {
        scenario: header.scenario,
        variant: header.variant,
        replication: header.replication,
        decisions: conformance.recorded.len(),
        conformance,
    })
}
