//! JSON-tree plumbing for the scenario DSL.
//!
//! Scenario specs live as [`serde::Value`] trees so that variants,
//! `--set key=value` CLI overrides and quick-scale overrides can all be
//! expressed the same way: a dotted path plus a replacement value applied
//! to the tree *before* the typed parse. The typed parse (strict —
//! unknown keys are errors) then catches any path typo that invented a
//! bogus key, so path application itself can be insert-friendly.

use serde::Value;

use crate::SpecError;

/// Sets `path` (dot-separated map keys, with numeric segments indexing
/// into lists) in `root` to `new`. Missing terminal keys are inserted;
/// missing intermediate keys become empty maps on the way down (the
/// strict typed parse rejects inventions). List indices must already
/// exist — an override must never grow a list silently. Descending into
/// a scalar is an error.
pub fn set_path(root: &mut Value, path: &str, new: Value) -> Result<(), SpecError> {
    if path.is_empty() {
        return Err(SpecError::new("override path must not be empty"));
    }
    let mut cur = root;
    let mut it = path.split('.').peekable();
    while let Some(part) = it.next() {
        if part.is_empty() {
            return Err(SpecError::new(format!(
                "override path `{path}` has an empty segment"
            )));
        }
        let slot: &mut Value = match cur {
            Value::Map(entries) => {
                let pos = match entries.iter().position(|(k, _)| k == part) {
                    Some(pos) => pos,
                    None => {
                        entries.push((part.to_string(), Value::Map(Vec::new())));
                        entries.len() - 1
                    }
                };
                &mut entries[pos].1
            }
            Value::Seq(items) => {
                let idx: usize = part.parse().map_err(|_| {
                    SpecError::new(format!(
                        "override path `{path}`: `{part}` must be a list index here"
                    ))
                })?;
                let len = items.len();
                items.get_mut(idx).ok_or_else(|| {
                    SpecError::new(format!(
                        "override path `{path}`: index {idx} out of range (len {len})"
                    ))
                })?
            }
            _ => {
                return Err(SpecError::new(format!(
                    "override path `{path}`: `{part}` is not inside an object or list"
                )));
            }
        };
        if it.peek().is_none() {
            *slot = new;
            return Ok(());
        }
        cur = slot;
    }
    // alc-lint: allow(panic-in-lib, reason="split('.') always yields >=1 segment, so the loop returns")
    unreachable!("split('.') yields at least one segment");
}

/// Builds a `T` by overlaying `overrides` (key → value, shallow) on top
/// of `T::default()`'s serialized form. Unknown keys are rejected with
/// the `what` context, so config typos surface as errors instead of
/// silently keeping the default.
pub fn from_overrides<T>(overrides: &[(String, Value)], what: &str) -> Result<T, SpecError>
where
    T: Default + serde::Serialize + serde::de::DeserializeOwned,
{
    let Value::Map(mut entries) = T::default().to_value() else {
        // alc-lint: allow(panic-in-lib, reason="override targets are structs, which serialize to maps")
        unreachable!("override targets serialize to maps");
    };
    for (k, v) in overrides {
        match entries.iter_mut().find(|(ek, _)| ek == k) {
            Some(e) => e.1 = v.clone(),
            None => {
                return Err(SpecError::new(format!("unknown {what} field `{k}`")));
            }
        }
    }
    T::from_value(&Value::Map(entries))
        .map_err(|e| SpecError::new(format!("invalid {what}: {e}")))
}

/// Normalizes the DSL's distribution shorthands into the canonical
/// (externally tagged) `alc_des::dist::Dist` representation:
///
/// * a bare number → `{"Constant": [x]}`
/// * `{"constant": x}`, `{"exponential": mean}` and its alias
///   `{"exponential_fast": mean}` (both ziggurat-sampled),
///   `{"uniform": [lo, hi]}`,
///   `{"erlang": {"stages", "mean"}}`,
///   `{"hyperexp": {"p", "mean_a", "mean_b"}}`
/// * already-canonical tags pass through unchanged.
pub fn normalize_dist(v: &Value) -> Result<Value, SpecError> {
    if let Some(x) = v.as_f64() {
        return Ok(tagged("Constant", Value::Seq(vec![Value::Num(x)])));
    }
    let Some([(tag, payload)]) = v.as_map() else {
        return Err(SpecError::new(
            "distribution must be a number or a single-key object",
        ));
    };
    let num = |what: &str| {
        payload.as_f64().ok_or_else(|| {
            SpecError::new(format!("`{what}` distribution needs a numeric value"))
        })
    };
    Ok(match tag.as_str() {
        "constant" => tagged("Constant", Value::Seq(vec![Value::Num(num("constant")?)])),
        // Both exponential shorthands lower to the ziggurat sampler —
        // the default since its promotion; spell the canonical
        // `{"Exponential": …}` tag to request inversion sampling.
        "exponential" => tagged(
            "ExpZig",
            Value::Map(vec![("mean".into(), Value::Num(num("exponential")?))]),
        ),
        "exponential_fast" => tagged(
            "ExpZig",
            Value::Map(vec![("mean".into(), Value::Num(num("exponential_fast")?))]),
        ),
        "uniform" => {
            let seq = payload.as_seq().filter(|s| s.len() == 2).ok_or_else(|| {
                SpecError::new("`uniform` distribution needs a [lo, hi] pair")
            })?;
            let lo = seq[0]
                .as_f64()
                .ok_or_else(|| SpecError::new("`uniform` lo must be numeric"))?;
            let hi = seq[1]
                .as_f64()
                .ok_or_else(|| SpecError::new("`uniform` hi must be numeric"))?;
            tagged(
                "Uniform",
                Value::Map(vec![
                    ("lo".into(), Value::Num(lo)),
                    ("hi".into(), Value::Num(hi)),
                ]),
            )
        }
        "erlang" => tagged("Erlang", payload.clone()),
        "hyperexp" => tagged("HyperExp", payload.clone()),
        // Canonical tags pass through.
        "Constant" | "Uniform" | "Exponential" | "ExpZig" | "Erlang" | "HyperExp" => v.clone(),
        other => {
            return Err(SpecError::new(format!(
                "unknown distribution kind `{other}`"
            )));
        }
    })
}

/// Normalizes the DSL's arrival-process shorthands into the canonical
/// `ArrivalProcess` representation:
///
/// * `"closed"` → `"Closed"`
/// * `{"open": {"interarrival": <dist>}}` → `{"Open": …}`
/// * `{"open_rate_per_s": λ}` → an `Open` exponential stream with mean
///   `1000/λ` ms
/// * canonical forms pass through (with the inner dist normalized).
pub fn normalize_arrival(v: &Value) -> Result<Value, SpecError> {
    match v {
        Value::Str(s) if s == "closed" || s == "Closed" => Ok(Value::Str("Closed".into())),
        Value::Map(entries) if entries.len() == 1 => {
            let (tag, payload) = &entries[0];
            match tag.as_str() {
                "open" | "Open" => {
                    let dist = payload.get("interarrival").ok_or_else(|| {
                        SpecError::new("`open` arrival needs an `interarrival` distribution")
                    })?;
                    for (k, _) in payload.as_map().unwrap_or(&[]) {
                        if k != "interarrival" {
                            return Err(SpecError::new(format!(
                                "unknown `open` arrival field `{k}`"
                            )));
                        }
                    }
                    Ok(tagged(
                        "Open",
                        Value::Map(vec![("interarrival".into(), normalize_dist(dist)?)]),
                    ))
                }
                "open_rate_per_s" => {
                    let rate = payload.as_f64().filter(|&r| r > 0.0).ok_or_else(|| {
                        SpecError::new("`open_rate_per_s` needs a positive rate")
                    })?;
                    Ok(tagged(
                        "Open",
                        Value::Map(vec![(
                            "interarrival".into(),
                            tagged(
                                "ExpZig",
                                Value::Map(vec![("mean".into(), Value::Num(1000.0 / rate))]),
                            ),
                        )]),
                    ))
                }
                other => Err(SpecError::new(format!(
                    "unknown arrival process `{other}` (want `closed`, `open`, or `open_rate_per_s`)"
                ))),
            }
        }
        _ => Err(SpecError::new(
            "arrival must be `\"closed\"` or a single-key object",
        )),
    }
}

fn tagged(tag: &str, payload: Value) -> Value {
    Value::Map(vec![(tag.to_string(), payload)])
}

/// Extracts ordered `(path, value)` pairs from an override map value.
pub fn override_pairs(v: &Value, what: &str) -> Result<Vec<(String, Value)>, SpecError> {
    v.as_map()
        .map(|m| m.to_vec())
        .ok_or_else(|| SpecError::new(format!("`{what}` must be an object of path → value")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_path_replaces_and_inserts() {
        let mut v = Value::Map(vec![(
            "a".into(),
            Value::Map(vec![("b".into(), Value::U64(1))]),
        )]);
        set_path(&mut v, "a.b", Value::U64(2)).unwrap();
        assert_eq!(v.get("a").unwrap().get("b"), Some(&Value::U64(2)));
        set_path(&mut v, "a.c", Value::Str("x".into())).unwrap();
        assert_eq!(v.get("a").unwrap().get("c"), Some(&Value::Str("x".into())));
        // Descending into a scalar fails.
        assert!(set_path(&mut v, "a.b.d", Value::Null).is_err());
    }

    #[test]
    fn set_path_indexes_into_lists() {
        let mut v = Value::Map(vec![(
            "axes".into(),
            Value::Seq(vec![
                Value::Map(vec![("values".into(), Value::Seq(vec![Value::U64(1)]))]),
                Value::Map(vec![("values".into(), Value::Seq(vec![Value::U64(2)]))]),
            ]),
        )]);
        set_path(
            &mut v,
            "axes.1.values",
            Value::Seq(vec![Value::U64(7), Value::U64(8)]),
        )
        .unwrap();
        let axes = v.get("axes").unwrap().as_seq().unwrap();
        assert_eq!(
            axes[1].get("values"),
            Some(&Value::Seq(vec![Value::U64(7), Value::U64(8)]))
        );
        // In-range element replacement works, out-of-range is an error
        // (overrides must never grow a list silently), and so is a
        // non-numeric segment against a list.
        set_path(&mut v, "axes.0", Value::U64(9)).unwrap();
        assert!(set_path(&mut v, "axes.5", Value::U64(1)).is_err());
        assert!(set_path(&mut v, "axes.first", Value::U64(1)).is_err());
    }

    #[test]
    fn dist_shorthands_normalize() {
        let exp = normalize_dist(&Value::Map(vec![("exponential".into(), Value::U64(300))]))
            .unwrap();
        let d: alc_des::dist::Dist = serde::Deserialize::from_value(&exp).unwrap();
        assert_eq!(d, alc_des::dist::Dist::exponential(300.0));

        let c = normalize_dist(&Value::U64(40)).unwrap();
        let d: alc_des::dist::Dist = serde::Deserialize::from_value(&c).unwrap();
        assert_eq!(d, alc_des::dist::Dist::constant(40.0));

        let z = normalize_dist(&Value::Map(vec![(
            "exponential_fast".into(),
            Value::Num(5.0),
        )]))
        .unwrap();
        let d: alc_des::dist::Dist = serde::Deserialize::from_value(&z).unwrap();
        assert_eq!(d, alc_des::dist::Dist::exponential_fast(5.0));

        assert!(normalize_dist(&Value::Str("nope".into())).is_err());
    }

    #[test]
    fn arrival_shorthands_normalize() {
        use alc_tpsim::config::ArrivalProcess;
        let closed = normalize_arrival(&Value::Str("closed".into())).unwrap();
        let a: ArrivalProcess = serde::Deserialize::from_value(&closed).unwrap();
        assert_eq!(a, ArrivalProcess::Closed);

        let open = normalize_arrival(&Value::Map(vec![(
            "open_rate_per_s".into(),
            Value::Num(200.0),
        )]))
        .unwrap();
        let a: ArrivalProcess = serde::Deserialize::from_value(&open).unwrap();
        assert_eq!(
            a,
            ArrivalProcess::Open {
                interarrival: alc_des::dist::Dist::exponential(5.0)
            }
        );
    }

    #[test]
    fn from_overrides_rejects_unknown_keys() {
        use alc_tpsim::config::ControlConfig;
        let good: ControlConfig = from_overrides(
            &[("displacement".to_string(), Value::Bool(true))],
            "control",
        )
        .unwrap();
        assert!(good.displacement);
        let bad: Result<ControlConfig, _> = from_overrides(
            &[("displacment".to_string(), Value::Bool(true))],
            "control",
        );
        assert!(bad.is_err());
    }
}
