//! The time-varying profile DSL.
//!
//! Every workload parameter in a scenario spec — `k`, the mix fractions,
//! the access skew, the arrival-rate and think-time factors — is a
//! [`Profile`]: a declarative description of how the value moves over
//! simulated time. Profiles compose the vocabulary the nonstationary
//! experiments of §8/§9 (and the related self-* overload-control work)
//! need: steps, ramps, sinusoids, bursts (flash crowds / fault surges),
//! replayed traces, and phase lists gluing any of those together.
//!
//! A profile *lowers* into an [`alc_analytic::surface::Schedule`] — the
//! engine-side representation — via [`Profile::lower`]. Phase lists
//! lower to [`Schedule::Profile`], whose segments evaluate their inner
//! shape in phase-local time, so `{"phases": [[0, 8], [600000,
//! {"ramp": …}]]}` behaves the same wherever the phase boundary sits.
//!
//! # JSON forms
//!
//! ```json
//! 8.0
//! {"step": {"at": 1000000, "before": 8, "after": 16}}
//! {"ramp": {"from": 8, "to": 16, "t_start": 0, "t_end": 60000}}
//! {"sinusoid": {"mean": 10, "amplitude": 4, "period": 600000}}
//! {"burst": {"base": 1, "peak": 4, "at": 300000, "duration": 60000}}
//! {"piecewise": [[0, 6], [150000, 18]]}
//! {"trace": "traces/daily-load.jsonl"}
//! {"phases": [[0, 8], [600000, {"sinusoid": {"mean": 10, "amplitude": 4, "period": 200000}}]]}
//! ```

use std::path::Path;

use alc_analytic::surface::Schedule;
use serde::Value;

use crate::SpecError;

/// A declarative time-varying value (see the module docs for the JSON
/// forms).
#[derive(Debug, Clone, PartialEq)]
pub enum Profile {
    /// The same value forever.
    Constant(f64),
    /// Abrupt jump at `at`: the §8 "jump-like variation".
    Step {
        /// Time of the step, ms.
        at: f64,
        /// Value before the step.
        before: f64,
        /// Value from the step on.
        after: f64,
    },
    /// Linear drift from `from` (at `t_start`) to `to` (at `t_end`).
    Ramp {
        /// Value before the ramp starts.
        from: f64,
        /// Value after the ramp ends.
        to: f64,
        /// Ramp start, ms.
        t_start: f64,
        /// Ramp end, ms.
        t_end: f64,
    },
    /// `mean + amplitude·sin(2πt/period)`: the §9 gradual variation.
    Sinusoid {
        /// Mid value.
        mean: f64,
        /// Peak deviation.
        amplitude: f64,
        /// Period, ms.
        period: f64,
    },
    /// A square surge: `base` except `peak` during `[at, at+duration)` —
    /// the flash-crowd / fault-event primitive.
    Burst {
        /// Baseline value.
        base: f64,
        /// Value during the burst window.
        peak: f64,
        /// Burst start, ms.
        at: f64,
        /// Burst length, ms.
        duration: f64,
    },
    /// Sample-and-hold over explicit `(t_ms, value)` breakpoints.
    Piecewise(Vec<(f64, f64)>),
    /// Replay of a JSONL trace file (one `{"t_ms": …, "value": …}` per
    /// line, ascending times), resolved relative to the spec file.
    Trace {
        /// Path of the trace file, relative to the spec.
        path: String,
    },
    /// Ordered phases: each `(start_ms, profile)` governs from its start
    /// until the next phase, with the inner profile evaluated in
    /// phase-local time.
    Phases(Vec<(f64, Profile)>),
}

impl Profile {
    /// Lowers the profile into the engine's [`Schedule`] representation,
    /// reading trace files relative to `base_dir`.
    pub fn lower(&self, base_dir: &Path) -> Result<Schedule, SpecError> {
        Ok(match self {
            Profile::Constant(v) => Schedule::Constant(*v),
            Profile::Step { at, before, after } => Schedule::Jump {
                at: *at,
                before: *before,
                after: *after,
            },
            Profile::Ramp {
                from,
                to,
                t_start,
                t_end,
            } => {
                if t_end <= t_start {
                    return Err(SpecError::new(format!(
                        "ramp t_end ({t_end}) must exceed t_start ({t_start})"
                    )));
                }
                Schedule::Ramp {
                    from: *from,
                    to: *to,
                    t_start: *t_start,
                    t_end: *t_end,
                }
            }
            Profile::Sinusoid {
                mean,
                amplitude,
                period,
            } => {
                if *period <= 0.0 {
                    return Err(SpecError::new("sinusoid period must be positive"));
                }
                Schedule::Sinusoid {
                    mean: *mean,
                    amplitude: *amplitude,
                    period: *period,
                }
            }
            Profile::Burst {
                base,
                peak,
                at,
                duration,
            } => {
                if *duration <= 0.0 {
                    return Err(SpecError::new("burst duration must be positive"));
                }
                Schedule::Piecewise(vec![(0.0, *base), (*at, *peak), (at + duration, *base)])
            }
            Profile::Piecewise(points) => {
                ensure_ascending(points.iter().map(|&(t, _)| t), "piecewise")?;
                Schedule::Piecewise(points.clone())
            }
            Profile::Trace { path } => {
                let full = base_dir.join(path);
                let text = std::fs::read_to_string(&full).map_err(|e| {
                    SpecError::new(format!("cannot read trace `{}`: {e}", full.display()))
                })?;
                let mut points = Vec::new();
                for (lineno, line) in text.lines().enumerate() {
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    let p: TracePoint = serde_json::from_str(line).map_err(|e| {
                        SpecError::new(format!(
                            "trace `{path}` line {}: {e}",
                            lineno + 1
                        ))
                    })?;
                    points.push((p.t_ms, p.value));
                }
                if points.is_empty() {
                    return Err(SpecError::new(format!("trace `{path}` is empty")));
                }
                ensure_ascending(points.iter().map(|&(t, _)| t), path)?;
                Schedule::Piecewise(points)
            }
            Profile::Phases(phases) => {
                if phases.is_empty() {
                    return Err(SpecError::new("phases list must not be empty"));
                }
                ensure_ascending(phases.iter().map(|&(t, _)| t), "phases")?;
                let mut segments = Vec::with_capacity(phases.len());
                for (start, inner) in phases {
                    segments.push((*start, inner.lower(base_dir)?));
                }
                Schedule::Profile(segments)
            }
        })
    }
}

#[derive(serde::Serialize, serde::Deserialize)]
struct TracePoint {
    t_ms: f64,
    value: f64,
}

fn ensure_ascending(
    times: impl Iterator<Item = f64>,
    what: &str,
) -> Result<(), SpecError> {
    let mut last = f64::NEG_INFINITY;
    for t in times {
        if t < last {
            return Err(SpecError::new(format!(
                "`{what}` times must be ascending (saw {t} after {last})"
            )));
        }
        last = t;
    }
    Ok(())
}

impl serde::Serialize for Profile {
    fn to_value(&self) -> Value {
        fn obj(tag: &str, fields: Vec<(&str, f64)>) -> Value {
            Value::Map(vec![(
                tag.to_string(),
                Value::Map(
                    fields
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), Value::Num(v)))
                        .collect(),
                ),
            )])
        }
        match self {
            Profile::Constant(v) => Value::Num(*v),
            Profile::Step { at, before, after } => obj(
                "step",
                vec![("at", *at), ("before", *before), ("after", *after)],
            ),
            Profile::Ramp {
                from,
                to,
                t_start,
                t_end,
            } => obj(
                "ramp",
                vec![
                    ("from", *from),
                    ("to", *to),
                    ("t_start", *t_start),
                    ("t_end", *t_end),
                ],
            ),
            Profile::Sinusoid {
                mean,
                amplitude,
                period,
            } => obj(
                "sinusoid",
                vec![("mean", *mean), ("amplitude", *amplitude), ("period", *period)],
            ),
            Profile::Burst {
                base,
                peak,
                at,
                duration,
            } => obj(
                "burst",
                vec![
                    ("base", *base),
                    ("peak", *peak),
                    ("at", *at),
                    ("duration", *duration),
                ],
            ),
            Profile::Piecewise(points) => Value::Map(vec![(
                "piecewise".to_string(),
                Value::Seq(
                    points
                        .iter()
                        .map(|&(t, v)| Value::Seq(vec![Value::Num(t), Value::Num(v)]))
                        .collect(),
                ),
            )]),
            Profile::Trace { path } => Value::Map(vec![(
                "trace".to_string(),
                Value::Str(path.clone()),
            )]),
            Profile::Phases(phases) => Value::Map(vec![(
                "phases".to_string(),
                Value::Seq(
                    phases
                        .iter()
                        .map(|(t, p)| Value::Seq(vec![Value::Num(*t), p.to_value()]))
                        .collect(),
                ),
            )]),
        }
    }
}

impl<'de> serde::Deserialize<'de> for Profile {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        profile_from_value(value).map_err(|e| serde::Error::custom(e.to_string()))
    }
}

fn num_field(map: &Value, key: &str, ctx: &str) -> Result<f64, SpecError> {
    map.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| SpecError::new(format!("`{ctx}` profile needs numeric `{key}`")))
}

fn profile_from_value(value: &Value) -> Result<Profile, SpecError> {
    if let Some(v) = value.as_f64() {
        return Ok(Profile::Constant(v));
    }
    let Some([(tag, payload)]) = value.as_map() else {
        return Err(SpecError::new(
            "profile must be a number or a single-key object (step/ramp/sinusoid/burst/piecewise/trace/phases)",
        ));
    };
    Ok(match tag.as_str() {
        "constant" => Profile::Constant(
            payload
                .as_f64()
                .ok_or_else(|| SpecError::new("`constant` profile needs a number"))?,
        ),
        "step" => Profile::Step {
            at: num_field(payload, "at", "step")?,
            before: num_field(payload, "before", "step")?,
            after: num_field(payload, "after", "step")?,
        },
        "ramp" => Profile::Ramp {
            from: num_field(payload, "from", "ramp")?,
            to: num_field(payload, "to", "ramp")?,
            t_start: num_field(payload, "t_start", "ramp")?,
            t_end: num_field(payload, "t_end", "ramp")?,
        },
        "sinusoid" => Profile::Sinusoid {
            mean: num_field(payload, "mean", "sinusoid")?,
            amplitude: num_field(payload, "amplitude", "sinusoid")?,
            period: num_field(payload, "period", "sinusoid")?,
        },
        "burst" => Profile::Burst {
            base: num_field(payload, "base", "burst")?,
            peak: num_field(payload, "peak", "burst")?,
            at: num_field(payload, "at", "burst")?,
            duration: num_field(payload, "duration", "burst")?,
        },
        "piecewise" => {
            let pts = payload
                .as_seq()
                .ok_or_else(|| SpecError::new("`piecewise` needs a [[t, v], …] list"))?;
            let mut points = Vec::with_capacity(pts.len());
            for p in pts {
                let pair = p.as_seq().filter(|s| s.len() == 2).ok_or_else(|| {
                    SpecError::new("`piecewise` entries must be [t, value] pairs")
                })?;
                let t = pair[0]
                    .as_f64()
                    .ok_or_else(|| SpecError::new("`piecewise` time must be numeric"))?;
                let v = pair[1]
                    .as_f64()
                    .ok_or_else(|| SpecError::new("`piecewise` value must be numeric"))?;
                points.push((t, v));
            }
            Profile::Piecewise(points)
        }
        "trace" => Profile::Trace {
            path: match payload {
                Value::Str(s) => s.clone(),
                _ => return Err(SpecError::new("`trace` needs a file path string")),
            },
        },
        "phases" => {
            let seq = payload
                .as_seq()
                .ok_or_else(|| SpecError::new("`phases` needs a [[t, profile], …] list"))?;
            let mut phases = Vec::with_capacity(seq.len());
            for p in seq {
                let pair = p.as_seq().filter(|s| s.len() == 2).ok_or_else(|| {
                    SpecError::new("`phases` entries must be [start_ms, profile] pairs")
                })?;
                let t = pair[0]
                    .as_f64()
                    .ok_or_else(|| SpecError::new("`phases` start must be numeric"))?;
                phases.push((t, profile_from_value(&pair[1])?));
            }
            Profile::Phases(phases)
        }
        other => {
            return Err(SpecError::new(format!("unknown profile kind `{other}`")));
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn roundtrip(p: &Profile) {
        let json = serde_json::to_string(p).unwrap();
        let back: Profile = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, p, "round-trip changed {json}");
    }

    #[test]
    fn profiles_round_trip() {
        roundtrip(&Profile::Constant(8.0));
        roundtrip(&Profile::Step {
            at: 1e6,
            before: 8.0,
            after: 16.0,
        });
        roundtrip(&Profile::Ramp {
            from: 0.0,
            to: 1.0,
            t_start: 10.0,
            t_end: 20.0,
        });
        roundtrip(&Profile::Sinusoid {
            mean: 10.0,
            amplitude: 4.0,
            period: 1000.0,
        });
        roundtrip(&Profile::Burst {
            base: 1.0,
            peak: 4.0,
            at: 100.0,
            duration: 50.0,
        });
        roundtrip(&Profile::Piecewise(vec![(0.0, 6.0), (10.0, 18.0)]));
        roundtrip(&Profile::Trace {
            path: "traces/x.jsonl".into(),
        });
        roundtrip(&Profile::Phases(vec![
            (0.0, Profile::Constant(8.0)),
            (
                100.0,
                Profile::Sinusoid {
                    mean: 10.0,
                    amplitude: 4.0,
                    period: 1000.0,
                },
            ),
        ]));
    }

    #[test]
    fn burst_lowers_to_square_pulse() {
        let p = Profile::Burst {
            base: 1.0,
            peak: 3.0,
            at: 100.0,
            duration: 50.0,
        };
        let s = p.lower(&PathBuf::from(".")).unwrap();
        assert_eq!(s.value(0.0), 1.0);
        assert_eq!(s.value(100.0), 3.0);
        assert_eq!(s.value(149.0), 3.0);
        assert_eq!(s.value(150.0), 1.0);
    }

    #[test]
    fn phases_lower_to_schedule_profile() {
        let p = Profile::Phases(vec![
            (0.0, Profile::Constant(8.0)),
            (
                100.0,
                Profile::Ramp {
                    from: 8.0,
                    to: 16.0,
                    t_start: 0.0,
                    t_end: 50.0,
                },
            ),
        ]);
        let s = p.lower(&PathBuf::from(".")).unwrap();
        assert_eq!(s.value(50.0), 8.0);
        assert_eq!(s.value(125.0), 12.0); // ramp midpoint in local time
        assert_eq!(s.value(200.0), 16.0);
    }

    #[test]
    fn trace_lowering_reads_jsonl() {
        let dir = std::env::temp_dir().join("alc_scenario_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("t.jsonl"),
            "{\"t_ms\":0,\"value\":1.0}\n{\"t_ms\":100,\"value\":2.5}\n",
        )
        .unwrap();
        let p = Profile::Trace {
            path: "t.jsonl".into(),
        };
        let s = p.lower(&dir).unwrap();
        assert_eq!(s.value(50.0), 1.0);
        assert_eq!(s.value(100.0), 2.5);
        // Missing file is a spec error, not a panic.
        assert!(Profile::Trace {
            path: "missing.jsonl".into()
        }
        .lower(&dir)
        .is_err());
    }

    #[test]
    fn invalid_profiles_are_rejected() {
        assert!(serde_json::from_str::<Profile>("{\"nope\": 1}").is_err());
        assert!(Profile::Ramp {
            from: 0.0,
            to: 1.0,
            t_start: 10.0,
            t_end: 10.0
        }
        .lower(&PathBuf::from("."))
        .is_err());
        assert!(Profile::Piecewise(vec![(10.0, 1.0), (0.0, 2.0)])
            .lower(&PathBuf::from("."))
            .is_err());
    }
}
