//! `scenario trace` — run one `(variant, replication)` cell with the
//! Chrome-trace sink installed and reconcile the emitted events against
//! the run's own report counters.
//!
//! The cell is constructed exactly like [`crate::runner`]'s, with a
//! [`Tee`] of two sinks installed before the run: a streaming
//! [`ChromeWriter`] producing the Perfetto-loadable
//! `<stem>_trace.json`, and a [`CountingSink`] whose tallies are
//! checked against the run's [`RunStats`](alc_tpsim::engine::RunStats)
//! / [`ClientStats`](alc_tpsim::ClientStats) after the run. Every
//! identity is structural — "commits equals attempt-spans ending in
//! `commit`", "every span opened was closed" — so a drifting emission
//! site fails the command rather than silently skewing the timeline.

use std::io;
use std::io::Write as _;
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};

use alc_tpsim::config::SystemConfig;
use alc_tpsim::engine::Simulator;
use alc_trace::{
    name as tname, ChromeWriter, CountingSink, Phase, Tee, TraceEvent, TraceSink,
};

use crate::compile::{RunPlan, VariantPlan};

/// A [`TraceSink`] behind a shared handle, so the caller can recover
/// the inner sink after the simulator consumes the boxed tee.
struct SharedSink<T: TraceSink>(Arc<Mutex<T>>);

impl<T: TraceSink> TraceSink for SharedSink<T> {
    fn emit(&mut self, ev: &TraceEvent) {
        if let Ok(mut sink) = self.0.lock() {
            sink.emit(ev);
        }
    }
}

/// Recovers the inner sink once the simulator has dropped its handle
/// (i.e. after `take_trace_sink`).
fn recover<T>(handle: Arc<Mutex<T>>) -> T {
    Arc::try_unwrap(handle)
        .ok()
        .expect("simulator released its sink handle in take_trace_sink")
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
}

/// One reconciliation identity: a report-side counter against the
/// trace-side tally that must equal it.
#[derive(Debug, Clone)]
pub struct TraceCheck {
    /// The identity, in words (e.g. `commits == attempt commit ends`).
    pub what: String,
    /// The report-side count.
    pub report: u64,
    /// The trace-side count.
    pub trace: u64,
}

impl TraceCheck {
    /// Whether the identity held.
    pub fn ok(&self) -> bool {
        self.report == self.trace
    }
}

/// The outcome of tracing one cell.
#[derive(Debug)]
pub struct TraceOutcome {
    /// File name written under the output directory.
    pub file_name: String,
    /// Total trace events emitted (all kinds, warmup included).
    pub events: u64,
    /// Span-begin events across all lanes.
    pub span_begins: u64,
    /// Span-end events across all lanes.
    pub span_ends: u64,
    /// The first unbalanced `(pid, tid, name, begins, ends)` lane, if
    /// any span was opened but never closed (or vice versa).
    pub unbalanced: Option<(u32, u32, &'static str, u64, u64)>,
    /// The reconciliation identities and their two sides.
    pub checks: Vec<TraceCheck>,
}

impl TraceOutcome {
    /// Whether every span balanced and every identity held.
    pub fn ok(&self) -> bool {
        self.unbalanced.is_none() && self.checks.iter().all(TraceCheck::ok)
    }
}

/// The trace file name of one cell:
/// `<name>[_<variant>][_rep<r>]_trace.json` — same stem convention as
/// the trajectory CSVs and gate logs.
pub fn trace_file_name(plan: &RunPlan, v: &VariantPlan, rep: u32) -> String {
    let mut stem = plan.name.clone();
    if !v.label.is_empty() {
        stem.push('_');
        stem.push_str(&v.label);
    }
    if v.seeds.len() > 1 {
        stem.push_str(&format!("_rep{rep}"));
    }
    format!("{stem}_trace.json")
}

/// Runs one `(variant, replication)` cell with tracing on, writes its
/// Chrome-trace JSON into `dir`, and reconciles the counting sink
/// against the run's report counters.
pub fn trace_cell(
    plan: &RunPlan,
    v: &VariantPlan,
    rep: usize,
    dir: &Path,
) -> io::Result<TraceOutcome> {
    std::fs::create_dir_all(dir)?;
    let file_name = trace_file_name(plan, v, rep as u32);
    let seed = v.seeds[rep];
    let sys = SystemConfig { seed, ..v.sys };
    let controller = v.controller.build(&sys, &v.workload);
    let mut sim = Simulator::new(sys, v.workload.clone(), v.cc, v.control, controller);
    sim.set_record_optimum(v.record_optimum);
    if !v.cc_switches.is_empty() {
        sim.set_cc_switches(&v.cc_switches);
    }
    if let Some(adaptive) = &v.adaptive_cc {
        let (candidates, policy) = adaptive.build();
        sim.set_adaptive_cc(candidates, policy);
    }
    let faults = v
        .fault_schedules
        .as_ref()
        .map_or(&v.faults, |per_rep| &per_rep[rep]);
    if !faults.is_empty() {
        sim.set_faults(faults);
    }
    if let Some(clients) = &v.clients {
        sim.set_clients(clients.clone());
    }

    let writer = ChromeWriter::new(io::BufWriter::new(std::fs::File::create(
        dir.join(&file_name),
    )?))?;
    let chrome = Arc::new(Mutex::new(writer));
    // Mirror `Simulator::run`: the window resets only when warmup is
    // positive, and warmup is clamped to the horizon.
    let warmup = v.control.warmup_ms.min(v.horizon_ms);
    let counting = if warmup > 0.0 {
        CountingSink::with_floor(warmup)
    } else {
        CountingSink::new()
    };
    let counts = Arc::new(Mutex::new(counting));
    sim.set_trace_sink(Box::new(Tee(
        SharedSink(Arc::clone(&chrome)),
        SharedSink(Arc::clone(&counts)),
    )));

    let stats = sim.run(v.horizon_ms);
    let clients = sim.client_stats();
    // Closes still-open spans at the horizon and drops the boxed tee,
    // releasing the shared handles for recovery below.
    drop(sim.take_trace_sink());
    recover(chrome).finish()?.flush()?;
    let c = recover(counts);

    let mut checks = Vec::new();
    let mut check = |what: &str, report: u64, trace: u64| {
        checks.push(TraceCheck {
            what: what.to_string(),
            report,
            trace,
        });
    };
    check(
        "commits == attempt commit ends",
        stats.commits,
        c.outcome(tname::ATTEMPT, "commit").after_floor,
    );
    check(
        "aborts == run abort/displaced + restart-wait displaced ends",
        stats.aborts,
        c.outcome(tname::RUN, "abort").after_floor
            + c.outcome(tname::RUN, "displaced").after_floor
            + c.outcome(tname::RESTART_WAIT, "displaced").after_floor,
    );
    check(
        "displaced == attempt displaced ends",
        stats.displaced,
        c.outcome(tname::ATTEMPT, "displaced").after_floor,
    );
    if let Some(cs) = &clients {
        check(
            "clients.committed == attempt commit ends",
            cs.committed,
            c.outcome(tname::ATTEMPT, "commit").after_floor,
        );
        check(
            "clients.timeouts == client.timeout instants",
            cs.timeouts,
            c.count(Phase::Mark, tname::CLIENT_TIMEOUT).after_floor,
        );
        check(
            "clients.shed == client.shed instants",
            cs.shed,
            c.count(Phase::Mark, tname::CLIENT_SHED).after_floor,
        );
        check(
            "clients.abandoned == client.abandon instants",
            cs.abandoned,
            c.count(Phase::Mark, tname::CLIENT_ABANDON).after_floor,
        );
        check(
            "clients.retries == retry flow ends + client.hedge instants",
            cs.retries,
            c.count(Phase::FlowEnd, tname::RETRY).after_floor
                + c.count(Phase::Mark, tname::CLIENT_HEDGE).after_floor,
        );
    }
    let scheduled_faults = faults.iter().filter(|(at, _)| *at <= v.horizon_ms).count() as u64;
    if scheduled_faults > 0 {
        check(
            "fault schedule == fault instants (whole run)",
            scheduled_faults,
            c.count(Phase::Mark, tname::FAULT).total,
        );
    }

    Ok(TraceOutcome {
        file_name,
        events: c.total(),
        span_begins: c.span_begins(),
        span_ends: c.span_ends(),
        unbalanced: c.first_unbalanced(),
        checks,
    })
}

/// Validates a written trace file: it must parse as a JSON object whose
/// `traceEvents` member is a list. Returns the event count.
pub fn validate_trace_file(path: &Path) -> Result<u64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let value: serde::Value =
        serde_json::from_str(&text).map_err(|e| format!("not valid JSON: {e}"))?;
    let serde::Value::Map(entries) = &value else {
        return Err(String::from("top level is not a JSON object"));
    };
    let Some((_, events)) = entries.iter().find(|(k, _)| k == "traceEvents") else {
        return Err(String::from("missing `traceEvents` member"));
    };
    let serde::Value::Seq(items) = events else {
        return Err(String::from("`traceEvents` is not a list"));
    };
    Ok(items.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_value;

    fn plan_from(json: &str) -> RunPlan {
        let tree: serde::Value = serde_json::from_str(json).expect("fixture parses");
        compile_value(&tree, Path::new("."), false).expect("fixture compiles")
    }

    const BASIC: &str = r#"{
        "name": "trace-unit", "horizon_ms": 5000.0, "seed": 7,
        "system": {"terminals": 30, "think": {"exponential": 250}},
        "control": {"sample_interval_ms": 500.0, "warmup_ms": 1000.0},
        "workload": {"k": {"step": {"at": 2500.0, "before": 4, "after": 8}}},
        "controller": {"is": {"initial_bound": 5, "max_bound": 60}}
    }"#;

    #[test]
    fn traced_cell_reconciles_and_validates() {
        let plan = plan_from(BASIC);
        let dir = std::env::temp_dir().join(format!("alc_trace_unit_{}", std::process::id()));
        let out = trace_cell(&plan, &plan.variants[0], 0, &dir).expect("cell runs");
        assert!(out.events > 0, "a live cell emits events");
        assert_eq!(out.span_begins, out.span_ends, "spans balance: {out:?}");
        assert!(out.ok(), "reconciliation holds: {out:?}");
        let n = validate_trace_file(&dir.join(&out.file_name)).expect("file validates");
        assert_eq!(n, out.events, "file holds every counted event");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn traced_run_matches_untraced_stats() {
        let plan = plan_from(BASIC);
        let v = &plan.variants[0];
        let dir = std::env::temp_dir().join(format!("alc_trace_inert_{}", std::process::id()));
        let traced = trace_cell(&plan, v, 0, &dir).expect("cell runs");
        // An untraced run of the same cell must see identical stats:
        // tracing draws no randomness and schedules no events.
        let sys = SystemConfig { seed: v.seeds[0], ..v.sys };
        let controller = v.controller.build(&sys, &v.workload);
        let mut sim = Simulator::new(sys, v.workload.clone(), v.cc, v.control, controller);
        let stats = sim.run(v.horizon_ms);
        let committed = traced
            .checks
            .iter()
            .find(|c| c.what.starts_with("commits"))
            .expect("commit identity present");
        assert_eq!(committed.report, stats.commits);
        std::fs::remove_dir_all(&dir).ok();
    }
}
