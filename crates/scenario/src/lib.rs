//! `alc-scenario` — nonstationary load-control experiments as data.
//!
//! Heiß & Wagner's argument lives in *nonstationary* territory: the
//! adaptive MPL controllers earn their keep when the workload jumps,
//! drifts or oscillates. This crate turns such experiments from bespoke
//! Rust functions into checked-in JSON **scenario specs**:
//!
//! * [`profile::Profile`] — the time-varying value DSL (steps, ramps,
//!   sinusoids, bursts, trace replay, phase lists) lowered into
//!   [`alc_analytic::surface::Schedule`];
//! * [`spec::ScenarioSpec`] — one experiment: workload profiles, system
//!   and control overrides, a controller, ablation variants and quick
//!   (CI-scale) overrides. Parsing is strict: unknown keys are errors;
//! * [`compile`] — deterministic lowering into a [`compile::RunPlan`]
//!   of concrete engine configurations with per-replication seeds;
//! * [`runner`] — rayon-parallel execution emitting the existing
//!   `Report`/CSV artifacts plus figure-compatible trajectory CSVs.
//!
//! The `scenario` binary drives it all:
//!
//! ```text
//! scenario run [--quick] [--out DIR] [--gate-log DIR] [--set path=value]... spec.json...
//! scenario validate scenarios/*.json
//! scenario replay <spec.json> <log.jsonl>...
//! scenario list [DIR]
//! ```
//!
//! The checked-in specs under `scenarios/` include ports of the bespoke
//! dynamic/ablation figure generators; the golden tests pin those ports
//! byte-identical to the pre-port outputs, proving the DSL subsumes the
//! hand-written experiments.

pub mod compile;
pub mod conformance;
pub mod html;
pub mod profile;
pub mod runner;
pub mod spec;
pub mod trace;
pub mod validate;
pub mod value_util;

use std::path::{Path, PathBuf};

use serde::Value;

/// A spec loading/validation/compilation error with context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    message: String,
}

impl SpecError {
    /// Creates an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        SpecError {
            message: message.into(),
        }
    }

    /// Wraps the error with an outer context (innermost message last).
    pub fn context(self, ctx: impl std::fmt::Display) -> Self {
        SpecError {
            message: format!("{ctx}: {}", self.message),
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SpecError {}

impl From<serde::Error> for SpecError {
    fn from(e: serde::Error) -> Self {
        SpecError::new(e.to_string())
    }
}

/// A spec file loaded into its JSON tree, remembering the directory that
/// trace paths resolve against.
#[derive(Debug, Clone)]
pub struct LoadedSpec {
    /// The raw JSON tree (overrides apply here before the typed parse).
    pub value: Value,
    /// Directory of the spec file (trace-path base).
    pub base_dir: PathBuf,
    /// The file the spec came from, for messages.
    pub path: PathBuf,
}

impl LoadedSpec {
    /// Reads and parses a spec file (not yet validated — see
    /// [`LoadedSpec::compile`]).
    pub fn read(path: &Path) -> Result<Self, SpecError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError::new(format!("cannot read `{}`: {e}", path.display())))?;
        let value: Value = serde_json::from_str(&text)
            .map_err(|e| SpecError::new(format!("`{}`: {e}", path.display())))?;
        let base_dir = path
            .parent()
            .map(Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from("."));
        Ok(LoadedSpec {
            value,
            base_dir,
            path: path.to_path_buf(),
        })
    }

    /// Applies `--set path=value` overrides to the tree.
    pub fn apply_sets(&mut self, sets: &[(String, Value)]) -> Result<(), SpecError> {
        for (path, val) in sets {
            value_util::set_path(&mut self.value, path, val.clone())
                .map_err(|e| e.context("--set"))?;
        }
        Ok(())
    }

    /// Compiles the (possibly overridden) tree into a run plan,
    /// validating everything on the way.
    pub fn compile(&self, quick: bool) -> Result<compile::RunPlan, SpecError> {
        compile::compile_value(&self.value, &self.base_dir, quick)
            .map_err(|e| e.context(self.path.display().to_string()))
    }
}

/// Parses one `path=value` CLI override; the value parses as JSON with a
/// bare-string fallback (`cc=2pl` works without quoting).
pub fn parse_set_arg(arg: &str) -> Result<(String, Value), SpecError> {
    let Some((path, raw)) = arg.split_once('=') else {
        return Err(SpecError::new(format!(
            "--set needs `path=value`, got `{arg}`"
        )));
    };
    if path.is_empty() {
        return Err(SpecError::new("--set path must not be empty"));
    }
    let value = serde_json::from_str::<Value>(raw)
        .unwrap_or_else(|_| Value::Str(raw.to_string()));
    Ok((path.to_string(), value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_set_arg_forms() {
        let (p, v) = parse_set_arg("system.terminals=40").unwrap();
        assert_eq!(p, "system.terminals");
        assert_eq!(v, Value::U64(40));
        let (_, v) = parse_set_arg("cc=2pl").unwrap();
        assert_eq!(v, Value::Str("2pl".into()));
        let (_, v) = parse_set_arg("workload.k={\"step\":{\"at\":1,\"before\":2,\"after\":3}}")
            .unwrap();
        assert!(v.get("step").is_some());
        assert!(parse_set_arg("no-equals").is_err());
    }
}
