//! Allocation gate: the calendar hot path must be zero-allocation in
//! steady state.
//!
//! This test binary installs a counting global allocator and drives a
//! simulator-shaped schedule/cancel/pop workload through a warmed-up
//! [`Calendar`]. After warm-up (slab and heap at working-set capacity),
//! *no* operation may touch the allocator: scheduling reuses free-list
//! slots, cancellation tombstones in place, and pops reap without any
//! side-table traffic.
//!
//! Kept as its own integration-test binary so the global allocator
//! cannot race with unrelated tests, and built with `harness = false`:
//! libtest's runner thread lazily allocates its parking state the first
//! time it blocks waiting on a test, which intermittently lands inside
//! the measurement window. A plain `main` keeps the process truly
//! single-threaded, so the counter sees only the workload.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use alc_des::calendar::EventToken;
use alc_des::{Calendar, SimTime};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A payload the size of the simulator's event enum; `txn` is the ring
/// slot the event belongs to.
#[derive(Clone, Copy)]
struct Payload {
    txn: usize,
    _generation: u64,
}

const POPULATION: usize = 512;

/// One standing-population churn pass: every pop schedules a successor in
/// the same ring slot; every few iterations a *stale* token (its event
/// already fired) is cancelled (must be a no-op) and a *live* event is
/// cancelled and replaced (tombstone + free-list reuse). The live event
/// population is exactly `POPULATION` throughout.
fn churn(
    cal: &mut Calendar<Payload>,
    ring: &mut [EventToken],
    prev: &mut [EventToken],
    ops: usize,
) {
    let delay = |i: usize| 1.0 + (i * 37 % 97) as f64;
    for i in 0..ops {
        let (_, p) = cal.pop().expect("standing population never drains");
        let idx = p.txn;
        let fired = ring[idx];
        ring[idx] = cal.schedule_in(
            delay(i),
            Payload {
                txn: idx,
                _generation: i as u64,
            },
        );
        prev[idx] = fired; // token of an event that just fired → stale
        if i % 5 == 0 {
            cal.cancel(prev[i * 31 % POPULATION]); // stale: no-op
        }
        if i % 7 == 0 {
            let j = i * 17 % POPULATION;
            cal.cancel(ring[j]); // live: in-place tombstone
            ring[j] = cal.schedule_in(
                delay(i + 13),
                Payload {
                    txn: j,
                    _generation: i as u64,
                },
            );
        }
    }
}

fn main() {
    const WARMUP_OPS: usize = 20_000;
    const MEASURED_OPS: usize = 100_000;

    // Generous capacity: the live population plus in-flight tombstones
    // stay far below this, so post-warm-up growth would be a real leak.
    let mut cal: Calendar<Payload> = Calendar::with_capacity(4 * POPULATION);
    // Mint a token that is already stale (its event fired) so the `prev`
    // ring starts with genuine no-op cancels — seeding it with the live
    // ring tokens would tombstone part of the standing population.
    let stale_seed = cal.schedule(
        SimTime::new(0.5),
        Payload {
            txn: 0,
            _generation: 0,
        },
    );
    assert!(cal.pop().is_some());
    let mut ring = Vec::with_capacity(POPULATION);
    for i in 0..POPULATION {
        ring.push(cal.schedule(
            SimTime::new(1.0 + (i % 97) as f64),
            Payload {
                txn: i,
                _generation: 0,
            },
        ));
    }
    let mut prev = vec![stale_seed; POPULATION];

    churn(&mut cal, &mut ring, &mut prev, WARMUP_OPS);
    let slots_after_warmup = cal.slot_capacity();

    let before = allocations();
    churn(&mut cal, &mut ring, &mut prev, MEASURED_OPS);
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "calendar hot path allocated {} times over {MEASURED_OPS} steady-state ops",
        after - before
    );
    // The slab high-water may drift by a handful of slots as tombstone
    // residency shifts against the delay pattern, but it must stay a
    // bounded working set — not scale with the 100k operations performed.
    assert!(
        cal.slot_capacity() <= slots_after_warmup + POPULATION / 8,
        "slab working set kept growing after warm-up: {} -> {}",
        slots_after_warmup,
        cal.slot_capacity()
    );
    println!("alloc_gate ok: calendar churn allocation-free");
}
