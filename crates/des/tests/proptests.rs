//! Property-based tests of the DES kernel invariants.

use proptest::prelude::*;

use alc_des::dist::{Dist, Sample};
use alc_des::rng::RngStream;
use alc_des::stats::{Histogram, Welford};
use alc_des::{Calendar, SimTime};

proptest! {
    /// The calendar pops events in nondecreasing time order, with FIFO
    /// order among equal times, for any schedule.
    #[test]
    fn calendar_pops_sorted_fifo(times in prop::collection::vec(0u32..1000, 1..200)) {
        let mut cal = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime::new(f64::from(t)), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut last_seq_at_time: Option<usize> = None;
        while let Some((t, seq)) = cal.pop() {
            prop_assert!(t >= last_time);
            if t == last_time {
                if let Some(prev) = last_seq_at_time {
                    prop_assert!(seq > prev, "FIFO violated at equal times");
                }
            }
            last_time = t;
            last_seq_at_time = Some(seq);
        }
    }

    /// Cancelled events never fire; all others do, exactly once.
    #[test]
    fn calendar_cancellation_is_exact(
        times in prop::collection::vec(0u32..100, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut cal = Calendar::new();
        let tokens: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, cal.schedule(SimTime::new(f64::from(t)), i)))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for ((i, tok), &dead) in tokens.iter().zip(cancel_mask.iter()) {
            if dead {
                cal.cancel(*tok);
                cancelled.insert(*i);
            }
        }
        let mut fired = std::collections::HashSet::new();
        while let Some((_, id)) = cal.pop() {
            prop_assert!(!cancelled.contains(&id), "cancelled event {id} fired");
            prop_assert!(fired.insert(id), "event {id} fired twice");
        }
        prop_assert_eq!(fired.len(), times.len() - cancelled.len());
    }

    /// The slab-backed indexed heap agrees with a naive reference model
    /// (linear scan over live `(time, seq)` pairs) on arbitrary
    /// schedule/cancel/pop interleavings — including cancels of tokens
    /// that already fired, which must be no-ops.
    #[test]
    fn calendar_matches_oracle_under_interleaving(
        ops in prop::collection::vec((0u8..4, 0u32..50, 0usize..64), 1..300),
    ) {
        // Oracle: (time, seq, id, alive); pop = min (time, seq) among alive.
        let mut oracle: Vec<(f64, u64, usize, bool)> = Vec::new();
        let mut oracle_now = 0.0f64;
        let mut seq = 0u64;

        let mut cal = Calendar::new();
        let mut tokens = Vec::new();
        let mut next_id = 0usize;

        for (kind, time, pick) in ops {
            match kind {
                // Schedule at `now + time`.
                0 | 1 => {
                    let at = oracle_now + f64::from(time);
                    tokens.push(cal.schedule(SimTime::new(at), next_id));
                    oracle.push((at, seq, next_id, true));
                    seq += 1;
                    next_id += 1;
                }
                // Cancel some previously issued token (may be stale).
                2 => {
                    if !tokens.is_empty() {
                        let idx = pick % tokens.len();
                        cal.cancel(tokens[idx]);
                        // Oracle: kill entry idx iff it has not fired yet.
                        if oracle[idx].3 {
                            oracle[idx].3 = false;
                        }
                    }
                }
                // Pop.
                _ => {
                    let expect = oracle
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| e.3)
                        .min_by(|(_, a), (_, b)| {
                            (a.0, a.1).partial_cmp(&(b.0, b.1)).unwrap()
                        })
                        .map(|(i, e)| (i, e.0, e.2));
                    let got = cal.pop();
                    match (expect, got) {
                        (None, None) => {}
                        (Some((i, at, id)), Some((t, e))) => {
                            prop_assert_eq!(t, SimTime::new(at));
                            prop_assert_eq!(e, id);
                            oracle[i].3 = false;
                            oracle_now = at;
                        }
                        (exp, got) => panic!("oracle {exp:?} vs calendar {got:?}"),
                    }
                }
            }
        }
        // Drain: the remainder must come out in exact oracle order.
        let mut rest: Vec<(f64, u64, usize)> = oracle
            .iter()
            .filter(|e| e.3)
            .map(|e| (e.0, e.1, e.2))
            .collect();
        rest.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).unwrap());
        for (at, _, id) in rest {
            let (t, e) = cal.pop().expect("calendar drained early");
            prop_assert_eq!(t, SimTime::new(at));
            prop_assert_eq!(e, id);
        }
        prop_assert!(cal.pop().is_none());
    }

    /// Welford matches the two-pass formulas on arbitrary data.
    #[test]
    fn welford_matches_two_pass(xs in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        let scale = mean.abs().max(1.0);
        prop_assert!((w.mean() - mean).abs() <= 1e-8 * scale);
        prop_assert!((w.variance() - var).abs() <= 1e-6 * var.max(1.0));
    }

    /// Merging two Welford accumulators equals accumulating everything in
    /// one, regardless of the split point.
    #[test]
    fn welford_merge_associative(
        xs in prop::collection::vec(-1e3f64..1e3, 2..100),
        split in 0usize..100,
    ) {
        let split = split % xs.len();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..split] {
            a.push(x);
        }
        for &x in &xs[split..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-6);
    }

    /// Distinct sampling returns exactly `count` distinct in-range values.
    #[test]
    fn distinct_below_properties(seed in any::<u64>(), population in 1u64..5000, frac in 0.0f64..1.0) {
        let count = ((population as f64 * frac) as usize).min(512);
        let mut rng = RngStream::from_seed(seed);
        let sample = rng.distinct_below(population, count);
        prop_assert_eq!(sample.len(), count);
        let set: std::collections::HashSet<_> = sample.iter().collect();
        prop_assert_eq!(set.len(), count, "duplicates in sample");
        prop_assert!(sample.iter().all(|&x| x < population));
    }

    /// Distribution samples are non-negative and the empirical mean is in
    /// the right ballpark for any parameterization.
    #[test]
    fn distributions_sane(seed in any::<u64>(), mean in 0.1f64..1e4) {
        let mut rng = RngStream::from_seed(seed);
        for dist in [Dist::constant(mean), Dist::exponential(mean)] {
            let n = 2000;
            let mut sum = 0.0;
            for _ in 0..n {
                let x = dist.sample(&mut rng);
                prop_assert!(x >= 0.0 && x.is_finite());
                sum += x;
            }
            let emp = sum / f64::from(n);
            prop_assert!(
                (emp - mean).abs() < 0.15 * mean,
                "empirical mean {emp} vs {mean}"
            );
        }
    }

    /// Histogram quantiles are monotone in q and within range bounds.
    #[test]
    fn histogram_quantiles_monotone(xs in prop::collection::vec(0.0f64..100.0, 1..300)) {
        let mut h = Histogram::new(0.0, 100.0, 20);
        for &x in &xs {
            h.record(x);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
        let mut last = f64::NEG_INFINITY;
        for &q in &qs {
            let v = h.quantile(q);
            prop_assert!(v >= last - 1e-9, "quantiles not monotone");
            prop_assert!((0.0..=100.0).contains(&v));
            last = v;
        }
    }

    /// Same seed ⇒ same stream; different seeds ⇒ (almost surely)
    /// different streams.
    #[test]
    fn rng_streams_deterministic(seed in any::<u64>()) {
        let mut a = RngStream::from_seed(seed);
        let mut b = RngStream::from_seed(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = RngStream::from_seed(seed.wrapping_add(1));
        let distinct = (0..64).any(|_| a.next_u64() != c.next_u64());
        prop_assert!(distinct);
    }
}
