//! Service-time and think-time distributions.
//!
//! The paper's physical model needs three of these directly — constant disk
//! service, exponential CPU bursts, exponential think times — and the rest
//! round out what a workload-sensitivity study reaches for (Erlang for
//! low-variance service, hyperexponential for bursty service, Zipf for the
//! hot-spot access extension the paper explicitly excludes but we test
//! against).

use crate::rng::RngStream;

/// Something that can be sampled to a non-negative duration/value.
pub trait Sample {
    /// Draws one value.
    fn sample(&self, rng: &mut RngStream) -> f64;

    /// The distribution's mean, used in tests and analytic cross-checks.
    fn mean(&self) -> f64;
}

/// A fixed value (the paper's disk subsystem: "constant service times and no
/// contention").
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Constant(pub f64);

impl Sample for Constant {
    #[inline]
    fn sample(&self, _rng: &mut RngStream) -> f64 {
        self.0
    }
    fn mean(&self) -> f64 {
        self.0
    }
}

/// Uniform on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Uniform {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
}

impl Sample for Uniform {
    #[inline]
    fn sample(&self, rng: &mut RngStream) -> f64 {
        rng.uniform(self.lo, self.hi)
    }
    fn mean(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }
}

/// Exponential with the given mean (CPU bursts, think times).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Exponential {
    /// Mean of the distribution (1/rate).
    pub mean: f64,
}

impl Exponential {
    /// Constructs from a mean. Panics if the mean is not positive.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean > 0.0, "exponential mean must be positive");
        Exponential { mean }
    }
}

impl Sample for Exponential {
    #[inline]
    fn sample(&self, rng: &mut RngStream) -> f64 {
        // Inverse CDF; 1 - u avoids ln(0).
        -self.mean * (1.0 - rng.uniform01()).ln()
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Erlang-k: sum of `k` independent exponentials; coefficient of variation
/// `1/sqrt(k)` — a low-variance service time.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Erlang {
    /// Number of exponential stages (k ≥ 1).
    pub stages: u32,
    /// Mean of the whole distribution.
    pub mean: f64,
}

impl Sample for Erlang {
    #[inline]
    fn sample(&self, rng: &mut RngStream) -> f64 {
        assert!(self.stages >= 1);
        let stage_mean = self.mean / f64::from(self.stages);
        // Product-of-uniforms form: one log instead of k.
        let mut prod = 1.0;
        for _ in 0..self.stages {
            prod *= 1.0 - rng.uniform01();
        }
        -stage_mean * prod.ln()
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Two-branch hyperexponential: with probability `p` the mean is `mean_a`,
/// otherwise `mean_b`. Coefficient of variation > 1 — a bursty service time.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HyperExp {
    /// Probability of drawing from branch A.
    pub p: f64,
    /// Mean of branch A.
    pub mean_a: f64,
    /// Mean of branch B.
    pub mean_b: f64,
}

impl Sample for HyperExp {
    #[inline]
    fn sample(&self, rng: &mut RngStream) -> f64 {
        let mean = if rng.chance(self.p) {
            self.mean_a
        } else {
            self.mean_b
        };
        -mean * (1.0 - rng.uniform01()).ln()
    }
    fn mean(&self) -> f64 {
        self.p * self.mean_a + (1.0 - self.p) * self.mean_b
    }
}

/// Exponential with the given mean, sampled via the Marsaglia–Tsang
/// ziggurat — same distribution as [`Exponential`], different (and
/// `ln()`-free) draw path.
///
/// The inverse-CDF sampler pays one `ln()` per draw — the single biggest
/// per-event cost left in the simulator hot path (think, CPU and open
/// arrivals all draw exponentials). The ziggurat's common case (~98.5% of
/// draws) is one 64-bit draw, a table lookup, one multiply and one
/// compare; edge rectangles pay an `exp()`, and the tail recurses on the
/// memoryless property (`tail = R + Exp`) so no draw ever calls `ln()`.
/// Tables are built once per process (`OnceLock`) and shared by every
/// stream.
///
/// The draw *sequence* differs from [`Exponential`] for the same RNG
/// stream, so swapping a config to `ExpZig` changes the realization
/// (never the distribution). The default experiment configs keep the
/// inverse-CDF sampler so the golden pins stay byte-identical; scenario
/// specs opt in per distribution.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExpZig {
    /// Mean of the distribution (1/rate).
    pub mean: f64,
}

impl ExpZig {
    /// Constructs from a mean. Panics if the mean is not positive.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean > 0.0, "exponential mean must be positive");
        ExpZig { mean }
    }
}

/// Number of ziggurat layers.
const ZIG_N: usize = 256;
/// Rightmost layer edge `R` of the 256-layer exponential ziggurat.
const ZIG_R: f64 = 7.697_117_470_131_05;
/// Common layer area `V` (including the tail beyond `R`).
const ZIG_V: f64 = 0.003_949_659_822_581_557;

struct ZigTables {
    /// Layer edges `x[i]`; `x[0]` is the virtual edge `V/f(R)`, `x[1] = R`.
    x: [f64; ZIG_N + 1],
    /// Density at the edges, `f(x[i]) = e^(−x[i])`.
    f: [f64; ZIG_N + 1],
}

fn zig_tables() -> &'static ZigTables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<ZigTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut x = [0.0f64; ZIG_N + 1];
        let mut f = [0.0f64; ZIG_N + 1];
        x[0] = ZIG_V * ZIG_R.exp(); // V / f(R)
        x[1] = ZIG_R;
        f[0] = (-x[0]).exp();
        f[1] = (-ZIG_R).exp();
        for i in 2..ZIG_N {
            // Each layer has area V: x[i] solves f(x[i]) = f(x[i-1]) + V/x[i-1].
            x[i] = -(ZIG_V / x[i - 1] + f[i - 1]).ln();
            f[i] = (-x[i]).exp();
        }
        x[ZIG_N] = 0.0;
        f[ZIG_N] = 1.0;
        ZigTables { x, f }
    })
}

/// One standard (mean 1) exponential draw via the ziggurat.
#[inline]
fn zig_standard_exp(rng: &mut RngStream) -> f64 {
    let tables = zig_tables();
    let mut offset = 0.0;
    loop {
        let bits = rng.next_u64();
        let i = (bits & 0xFF) as usize;
        // 53-bit uniform in [0, 1) from the top bits.
        let u = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let x = u * tables.x[i];
        if x < tables.x[i + 1] {
            return offset + x; // inside the layer rectangle: accept
        }
        if i == 0 {
            // Tail beyond R: memoryless, so tail = R + Exp. Re-run the
            // whole ziggurat with the offset advanced — no ln() needed.
            offset += ZIG_R;
            continue;
        }
        // Edge sliver: accept against the true density.
        let v = rng.uniform01();
        if tables.f[i] + v * (tables.f[i + 1] - tables.f[i]) < (-x).exp() {
            return offset + x;
        }
    }
}

impl Sample for ExpZig {
    #[inline]
    fn sample(&self, rng: &mut RngStream) -> f64 {
        self.mean * zig_standard_exp(rng)
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

/// A distribution choice, serializable for experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Dist {
    /// Fixed value.
    Constant(Constant),
    /// Uniform interval.
    Uniform(Uniform),
    /// Exponential.
    Exponential(Exponential),
    /// Exponential via the ln()-free ziggurat sampler.
    ExpZig(ExpZig),
    /// Erlang-k.
    Erlang(Erlang),
    /// Two-branch hyperexponential.
    HyperExp(HyperExp),
}

impl Dist {
    /// Shorthand for a constant distribution.
    pub fn constant(v: f64) -> Self {
        Dist::Constant(Constant(v))
    }
    /// Shorthand for an exponential with the given mean. Draws via the
    /// ln()-free ziggurat sampler — the default since its promotion
    /// (same distribution as [`Dist::exponential_inverse`], different
    /// realization per seed; goldens were re-blessed with the switch).
    pub fn exponential(mean: f64) -> Self {
        Dist::ExpZig(ExpZig::with_mean(mean))
    }
    /// Shorthand for the inversion-sampled (`-mean·ln(u)`) exponential.
    pub fn exponential_inverse(mean: f64) -> Self {
        Dist::Exponential(Exponential::with_mean(mean))
    }
    /// Alias of [`Dist::exponential`], kept for spec compatibility
    /// (`{"exponential_fast": m}` predates the ziggurat promotion).
    pub fn exponential_fast(mean: f64) -> Self {
        Dist::ExpZig(ExpZig::with_mean(mean))
    }
}

impl Sample for Dist {
    #[inline]
    fn sample(&self, rng: &mut RngStream) -> f64 {
        match self {
            Dist::Constant(d) => d.sample(rng),
            Dist::Uniform(d) => d.sample(rng),
            Dist::Exponential(d) => d.sample(rng),
            Dist::ExpZig(d) => d.sample(rng),
            Dist::Erlang(d) => d.sample(rng),
            Dist::HyperExp(d) => d.sample(rng),
        }
    }
    #[inline]
    fn mean(&self) -> f64 {
        match self {
            Dist::Constant(d) => d.mean(),
            Dist::Uniform(d) => d.mean(),
            Dist::Exponential(d) => d.mean(),
            Dist::ExpZig(d) => d.mean(),
            Dist::Erlang(d) => d.mean(),
            Dist::HyperExp(d) => d.mean(),
        }
    }
}

/// Zipf-like discrete distribution over `[0, n)` with exponent `theta`,
/// via rejection-inversion (Hörmann). Used by the hot-spot access-pattern
/// extension; `theta = 0` degenerates to the paper's uniform selection.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    // Precomputed constants of the rejection-inversion sampler.
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl Zipf {
    /// Creates a Zipf sampler over `[0, n)` with skew `theta ∈ [0, 1)∪(1, …)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0);
        assert!(theta >= 0.0 && (theta - 1.0).abs() > 1e-9, "theta == 1 unsupported");
        let h = |x: f64| ((x + 1.0).powf(1.0 - theta) - 1.0) / (1.0 - theta);
        let h_x1 = h(1.5) - 1.0;
        let h_n = h(n as f64 + 0.5);
        let s = 2.0 - {
            // h^-1(h(2.5) - 2^-theta) ... constant from Hörmann's paper
            let v = h(2.5) - (2.0f64).powf(-theta);
            ((1.0 - theta) * v + 1.0).powf(1.0 / (1.0 - theta)) - 1.0
        };
        Zipf { n, theta, h_x1, h_n, s }
    }

    /// Draws one value in `[0, n)`; smaller values are more popular.
    #[inline]
    pub fn sample(&self, rng: &mut RngStream) -> u64 {
        if self.theta == 0.0 {
            return rng.below(self.n);
        }
        let h_inv = |v: f64| ((1.0 - self.theta) * v + 1.0).powf(1.0 / (1.0 - self.theta)) - 1.0;
        loop {
            let u = self.h_x1 + rng.uniform01() * (self.h_n - self.h_x1);
            let x = h_inv(u);
            let k = (x + 0.5).floor().max(1.0);
            let h_k = |x: f64| ((x + 1.0).powf(1.0 - self.theta) - 1.0) / (1.0 - self.theta);
            if k - x <= self.s || u >= h_k(k + 0.5) - k.powf(-self.theta) {
                let idx = k as u64;
                if idx >= 1 && idx <= self.n {
                    return idx - 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngStream;

    fn mean_of(d: &impl Sample, seed: u64, n: usize) -> f64 {
        let mut rng = RngStream::from_seed(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let mut rng = RngStream::from_seed(1);
        let d = Constant(25.0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 25.0);
        }
        assert_eq!(d.mean(), 25.0);
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Exponential::with_mean(10.0);
        let m = mean_of(&d, 11, 200_000);
        assert!((m - 10.0).abs() < 0.15, "sample mean {m}");
    }

    #[test]
    fn default_exponential_is_ziggurat_with_sane_moments() {
        // The ziggurat promotion: `Dist::exponential` must be the zig
        // draw path, and its first two moments must match the
        // distribution it replaced (mean m, variance m²).
        let d = Dist::exponential(10.0);
        assert!(matches!(d, Dist::ExpZig(_)), "default is not ExpZig: {d:?}");
        assert_eq!(d.mean(), 10.0);
        let mut rng = RngStream::from_seed(11);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x >= 0.0));
        let m = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64;
        assert!((m - 10.0).abs() < 0.15, "sample mean {m}");
        assert!((var - 100.0).abs() < 3.0, "sample variance {var}");
        // And the inversion sampler stays available, same moments.
        let inv = Dist::exponential_inverse(10.0);
        assert!(matches!(inv, Dist::Exponential(_)));
        let mi = mean_of(&inv, 11, 200_000);
        assert!((mi - 10.0).abs() < 0.15, "inverse sample mean {mi}");
    }

    #[test]
    fn exponential_is_nonnegative() {
        let d = Exponential::with_mean(1.0);
        let mut rng = RngStream::from_seed(12);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Uniform { lo: 2.0, hi: 6.0 };
        let mut rng = RngStream::from_seed(13);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..6.0).contains(&x));
        }
        let m = mean_of(&d, 14, 100_000);
        assert!((m - 4.0).abs() < 0.05, "sample mean {m}");
    }

    #[test]
    fn erlang_mean_and_lower_variance() {
        let d = Erlang { stages: 4, mean: 8.0 };
        let mut rng = RngStream::from_seed(15);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let m: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n as f64;
        assert!((m - 8.0).abs() < 0.1, "mean {m}");
        // Erlang-4 variance = mean^2 / 4 = 16
        assert!((var - 16.0).abs() < 1.0, "variance {var}");
    }

    #[test]
    fn hyperexp_mean() {
        let d = HyperExp { p: 0.9, mean_a: 1.0, mean_b: 20.0 };
        assert!((d.mean() - 2.9).abs() < 1e-12);
        let m = mean_of(&d, 16, 300_000);
        assert!((m - 2.9).abs() < 0.1, "sample mean {m}");
    }

    #[test]
    fn expzig_matches_exponential_moments() {
        // Same distribution as the inverse-CDF sampler: mean, variance
        // and the e^{-1} upper-tail mass must all line up with theory.
        let d = ExpZig::with_mean(10.0);
        let mut rng = RngStream::from_seed(21);
        let n = 300_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x >= 0.0));
        let m: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n as f64;
        let tail = samples.iter().filter(|&&x| x > 10.0).count() as f64 / n as f64;
        assert!((m - 10.0).abs() < 0.1, "mean {m}");
        assert!((var - 100.0).abs() < 3.0, "variance {var}");
        assert!(
            (tail - (-1.0f64).exp()).abs() < 0.01,
            "P(X > mean) = {tail}, expected ~0.3679"
        );
    }

    #[test]
    fn expzig_tail_region_is_reachable_and_finite() {
        // Force enough draws that the ziggurat tail (x > R ≈ 7.7 means,
        // probability e^{-7.7} ≈ 4.5e-4) fires and stays finite.
        let d = ExpZig::with_mean(1.0);
        let mut rng = RngStream::from_seed(22);
        let n = 200_000;
        let deep = (0..n)
            .map(|_| d.sample(&mut rng))
            .filter(|&x| x > 7.697_117_470_131_05)
            .count();
        assert!(deep > 20, "tail never sampled ({deep} hits)");
        assert!(deep < 400, "tail oversampled ({deep} hits)");
    }

    #[test]
    fn expzig_is_deterministic_per_seed() {
        let d = Dist::exponential_fast(5.0);
        let draw = |seed| {
            let mut rng = RngStream::from_seed(seed);
            (0..100).map(|_| d.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
        assert_eq!(d.mean(), 5.0);
    }

    #[test]
    fn dist_enum_dispatch() {
        let d = Dist::exponential(5.0);
        assert_eq!(d.mean(), 5.0);
        let c = Dist::constant(3.0);
        let mut rng = RngStream::from_seed(17);
        assert_eq!(c.sample(&mut rng), 3.0);
    }

    #[test]
    fn zipf_uniform_degenerate() {
        let z = Zipf::new(100, 0.0);
        let mut rng = RngStream::from_seed(18);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            let v = z.sample(&mut rng);
            assert!(v < 100);
            seen.insert(v);
        }
        assert!(seen.len() > 90, "uniform should cover most of the range");
    }

    #[test]
    fn zipf_skews_to_small_values() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = RngStream::from_seed(19);
        let n = 50_000;
        let small = (0..n).filter(|_| z.sample(&mut rng) < 100).count();
        // With theta≈1, the first 10% of items draw well over half the mass.
        assert!(
            small as f64 > 0.5 * n as f64,
            "only {small}/{n} samples in the hot range"
        );
    }

    #[test]
    fn zipf_values_in_range() {
        let z = Zipf::new(10, 0.8);
        let mut rng = RngStream::from_seed(20);
        for _ in 0..20_000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }
}
