//! The future event list.
//!
//! A [`Calendar`] holds events of an arbitrary payload type `E`, each tagged
//! with a firing time. `pop` yields events in time order; events with equal
//! times fire in the order they were scheduled (FIFO tie-break via a
//! monotonically increasing sequence number), which keeps simulation runs
//! deterministic regardless of heap internals.
//!
//! Cancellation is *lazy*: [`Calendar::schedule`] returns an [`EventToken`];
//! calling [`Calendar::cancel`] marks that token dead and the event is
//! silently dropped when its time comes. Lazy cancellation is O(1) and is
//! how the simulator implements transaction displacement (aborting an active
//! transaction whose service-completion event is already scheduled).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Identifies a scheduled event so it can be cancelled later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The future event list: a priority queue of `(time, payload)` pairs with
/// FIFO tie-breaking and lazy cancellation.
pub struct Calendar<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    cancelled: std::collections::HashSet<u64>,
    now: SimTime,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// Creates an empty calendar at time zero.
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time: the firing time of the most recently
    /// popped event (or zero before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// Panics if `at` lies in the past: scheduling into the past means the
    /// model computed a negative delay, which is always a bug.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventToken {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
        EventToken(seq)
    }

    /// Schedules `payload` to fire `delay` milliseconds from now.
    pub fn schedule_in(&mut self, delay: f64, payload: E) -> EventToken {
        self.schedule(self.now + delay, payload)
    }

    /// Marks a previously scheduled event as cancelled. Cancelling an event
    /// that already fired (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, token: EventToken) {
        self.cancelled.insert(token.0);
    }

    /// Removes and returns the next live event, advancing the clock to its
    /// firing time. Returns `None` when no live events remain.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(ev) = self.heap.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            debug_assert!(ev.at >= self.now, "calendar time went backwards");
            self.now = ev.at;
            return Some((ev.at, ev.payload));
        }
        None
    }

    /// The firing time of the next live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(ev) = self.heap.peek() {
            if self.cancelled.contains(&ev.seq) {
                let seq = ev.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(ev.at);
        }
        None
    }

    /// Number of scheduled entries, including not-yet-reaped cancelled ones.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no entries are scheduled (cancelled-but-unreaped entries
    /// still count, matching [`Calendar::len`]).
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: f64) -> SimTime {
        SimTime::new(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(t(30.0), "c");
        cal.schedule(t(10.0), "a");
        cal.schedule(t(20.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| cal.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_fire_fifo() {
        let mut cal = Calendar::new();
        for i in 0..100 {
            cal.schedule(t(5.0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| cal.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut cal = Calendar::new();
        cal.schedule(t(10.0), ());
        cal.schedule(t(25.0), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), t(10.0));
        cal.pop();
        assert_eq!(cal.now(), t(25.0));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut cal = Calendar::new();
        cal.schedule(t(10.0), 0);
        cal.pop();
        cal.schedule_in(5.0, 1);
        let (at, _) = cal.pop().unwrap();
        assert_eq!(at, t(15.0));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut cal = Calendar::new();
        cal.schedule(t(10.0), ());
        cal.pop();
        cal.schedule(t(5.0), ());
    }

    #[test]
    fn cancellation_drops_event() {
        let mut cal = Calendar::new();
        let tok = cal.schedule(t(10.0), "dead");
        cal.schedule(t(20.0), "alive");
        cal.cancel(tok);
        let (at, e) = cal.pop().unwrap();
        assert_eq!(e, "alive");
        assert_eq!(at, t(20.0));
        assert!(cal.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut cal = Calendar::new();
        let tok = cal.schedule(t(1.0), ());
        cal.pop();
        cal.cancel(tok);
        cal.schedule(t(2.0), ());
        assert!(cal.pop().is_some());
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut cal = Calendar::new();
        let tok = cal.schedule(t(1.0), "x");
        cal.schedule(t(2.0), "y");
        cal.cancel(tok);
        assert_eq!(cal.peek_time(), Some(t(2.0)));
        assert_eq!(cal.pop().unwrap().1, "y");
    }

    #[test]
    fn empty_calendar() {
        let mut cal: Calendar<()> = Calendar::new();
        assert!(cal.is_empty());
        assert_eq!(cal.len(), 0);
        assert!(cal.pop().is_none());
        assert!(cal.peek_time().is_none());
    }
}
