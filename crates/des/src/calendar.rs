//! The future event list.
//!
//! A [`Calendar`] holds events of an arbitrary payload type `E`, each tagged
//! with a firing time. `pop` yields events in time order; events with equal
//! times fire in the order they were scheduled (FIFO tie-break via a
//! monotonically increasing sequence number), which keeps simulation runs
//! deterministic regardless of heap internals.
//!
//! # Design: slab + two-tier event list, zero steady-state allocation
//!
//! Payloads live in a slab of reusable slots threaded on a free list; the
//! priority queue over small `(time, seq, slot)` entries is a *two-tier
//! event list* (a lazy-queue/ladder-queue relative):
//!
//! * `near` — the imminent events, sorted **descending** by `(time, seq)`
//!   so the next event is popped off the end in O(1);
//! * `far` — everything beyond the near horizon, completely unsorted, so
//!   scheduling is an O(1) push.
//!
//! When `near` drains, a refill selects the k smallest keys out of `far`
//! (`select_nth_unstable` partition, then one small sort), amortizing the
//! ordering work over the next k pops. For a standing event population —
//! the only regime a closed simulation produces — both operations are
//! O(1) amortized, which is why this structure beats any O(log n) binary
//! or d-ary heap on the simulator's pop/schedule churn (a slab-backed
//! 4-ary indexed heap was tried first and only matched the seed's
//! `BinaryHeap` throughput; see `perfgate`). Once the run reaches its
//! working-set size, scheduling pops a slot off the free list and pushes
//! into retained capacity — no allocator traffic at all on the hot path.
//!
//! Cancellation ([`Calendar::schedule`] returns an [`EventToken`]) is an
//! O(1) in-place tombstone: the slot's payload is dropped and the heap
//! entry is reaped whenever it surfaces. Tokens carry the slot's
//! *generation*, which bumps every time a slot is freed, so a token whose
//! event already fired (or was already cancelled) is recognized as stale
//! and ignored — stale cancels can never leak bookkeeping (the seed
//! design parked them in a cancel-set forever) nor kill an event that
//! happens to reuse the slot.

use crate::time::SimTime;

/// Identifies a scheduled event so it can be cancelled later.
///
/// Tokens are generational: once the event fires or is cancelled, the
/// token goes stale and every further [`Calendar::cancel`] with it is a
/// no-op, even after the underlying slot is reused by a later event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken {
    slot: u32,
    gen: u32,
}

/// Free-list terminator.
const NIL: u32 = u32::MAX;

/// Minimum refill batch: sorting fewer entries than this costs more in
/// refill bookkeeping than the sort saves.
const MIN_REFILL: usize = 32;

/// A queue entry: everything ordering needs without touching the slab
/// (payloads are only read when their entry wins).
#[derive(Clone, Copy)]
struct Entry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl Entry {
    /// Total-order sort key. Times are finite and non-negative, so the
    /// IEEE-754 bit pattern orders exactly like the float — one integer
    /// compare instead of a NaN-aware float compare. `+ 0.0` normalizes
    /// a `-0.0` (which `SimTime::new` accepts) to `+0.0`: its sign-bit
    /// pattern would otherwise sort *after* every positive time.
    #[inline]
    fn key(&self) -> (u64, u64) {
        ((self.at.millis() + 0.0).to_bits(), self.seq)
    }
}

struct Slot<E> {
    /// Bumped on every free; pending tokens with the old value go stale.
    gen: u32,
    /// `Some` while the event is live; `None` once cancelled (tombstone)
    /// or while the slot sits on the free list.
    payload: Option<E>,
    /// Next slot on the free list (meaningful only while free).
    next_free: u32,
}

/// The future event list: a priority queue of `(time, payload)` pairs with
/// FIFO tie-breaking and O(1) generational cancellation.
pub struct Calendar<E> {
    /// Imminent events, sorted descending by key: next event at the end.
    near: Vec<Entry>,
    /// Far-horizon events, unsorted.
    far: Vec<Entry>,
    /// Upper key bound of `near` (the key of its head while filled):
    /// while `near` is non-empty, a new event below this key must be
    /// merged into `near`, everything else lands in `far`.
    split: (u64, u64),
    slots: Vec<Slot<E>>,
    free_head: u32,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// Creates an empty calendar at time zero.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty calendar with room for `cap` concurrently
    /// scheduled events before any allocation happens.
    pub fn with_capacity(cap: usize) -> Self {
        Calendar {
            near: Vec::with_capacity(cap),
            far: Vec::with_capacity(cap),
            split: (0, 0),
            slots: Vec::with_capacity(cap),
            free_head: NIL,
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time: the firing time of the most recently
    /// popped event (or zero before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// Panics if `at` lies in the past: scheduling into the past means the
    /// model computed a negative delay, which is always a bug.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventToken {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = if self.free_head != NIL {
            let s = self.free_head as usize;
            self.free_head = self.slots[s].next_free;
            self.slots[s].payload = Some(payload);
            s as u32
        } else {
            assert!(self.slots.len() < NIL as usize, "calendar slab overflow");
            self.slots.push(Slot {
                gen: 0,
                payload: Some(payload),
                next_free: NIL,
            });
            (self.slots.len() - 1) as u32
        };
        let entry = Entry { at, seq, slot };
        // While `near` is filled, anything below its head key must keep
        // `near` sorted; everything else is an O(1) far push (with an
        // empty `near` the next refill re-establishes order anyway).
        if !self.near.is_empty() && entry.key() < self.split {
            let key = entry.key();
            let pos = self.near.partition_point(|e| e.key() > key);
            self.near.insert(pos, entry);
        } else {
            self.far.push(entry);
        }
        EventToken {
            slot,
            gen: self.slots[slot as usize].gen,
        }
    }

    /// Schedules `payload` to fire `delay` milliseconds from now.
    pub fn schedule_in(&mut self, delay: f64, payload: E) -> EventToken {
        self.schedule(self.now + delay, payload)
    }

    /// Marks a previously scheduled event as cancelled. O(1): the payload
    /// is dropped in place and the heap entry is reaped lazily. Cancelling
    /// an event that already fired (or was already cancelled) is a no-op —
    /// the token's generation no longer matches the slot's.
    pub fn cancel(&mut self, token: EventToken) {
        if let Some(slot) = self.slots.get_mut(token.slot as usize) {
            if slot.gen == token.gen {
                slot.payload = None;
            }
        }
    }

    /// Removes and returns the next live event, advancing the clock to its
    /// firing time. Returns `None` when no live events remain.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if !self.settle() {
            return None;
        }
        let entry = self.near.pop().expect("settle guarantees a live tail");
        let payload = self.free_slot(entry.slot).expect("settled tail is live");
        debug_assert!(entry.at >= self.now, "calendar time went backwards");
        self.now = entry.at;
        Some((entry.at, payload))
    }

    /// The firing time of the next live event without removing it.
    /// Tombstoned entries at the front are reaped on the way.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if !self.settle() {
            return None;
        }
        Some(self.near.last().expect("settle guarantees a live tail").at)
    }

    /// Number of scheduled entries, including not-yet-reaped cancelled ones.
    pub fn len(&self) -> usize {
        self.near.len() + self.far.len()
    }

    /// True if no entries are scheduled (cancelled-but-unreaped entries
    /// still count, matching [`Calendar::len`]).
    pub fn is_empty(&self) -> bool {
        self.near.is_empty() && self.far.is_empty()
    }

    /// Slab slots ever allocated. Steady-state workloads plateau here —
    /// the alloc-gate tests assert this stops growing after warm-up.
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Returns the slot's payload (None for a tombstone) and puts the slot
    /// on the free list, invalidating outstanding tokens via the
    /// generation bump.
    #[inline]
    fn free_slot(&mut self, slot: u32) -> Option<E> {
        let s = &mut self.slots[slot as usize];
        let payload = s.payload.take();
        s.gen = s.gen.wrapping_add(1);
        s.next_free = self.free_head;
        self.free_head = slot;
        payload
    }

    /// Ensures the `near` tail is a live entry, reaping tombstones and
    /// refilling from `far` as needed. Returns `false` when drained.
    #[inline]
    fn settle(&mut self) -> bool {
        loop {
            while let Some(&tail) = self.near.last() {
                if self.slots[tail.slot as usize].payload.is_some() {
                    return true;
                }
                self.near.pop();
                self.free_slot(tail.slot);
            }
            if self.far.is_empty() {
                return false;
            }
            self.refill();
        }
    }

    /// Moves the k smallest far-horizon keys into `near` and sorts them —
    /// the only O(k log k) step, amortized over the next k pops.
    /// Tombstones encountered on the way are reaped for free.
    fn refill(&mut self) {
        debug_assert!(self.near.is_empty() && !self.far.is_empty());
        let n = self.far.len();
        let k = (n / 8).clamp(MIN_REFILL.min(n), n);
        if k < n {
            // Descending partition: the k smallest keys end up in
            // `far[n - k..]`, ready to be popped off the back.
            let idx = n - k;
            self.far
                .select_nth_unstable_by(idx, |a, b| b.key().cmp(&a.key()));
        }
        for _ in 0..k {
            let entry = self.far.pop().expect("refill count bounded by len");
            if self.slots[entry.slot as usize].payload.is_some() {
                self.near.push(entry);
            } else {
                self.free_slot(entry.slot);
            }
        }
        self.near
            .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
        if let Some(&head) = self.near.first() {
            self.split = head.key();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: f64) -> SimTime {
        SimTime::new(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(t(30.0), "c");
        cal.schedule(t(10.0), "a");
        cal.schedule(t(20.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| cal.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_fire_fifo() {
        let mut cal = Calendar::new();
        for i in 0..100 {
            cal.schedule(t(5.0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| cal.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut cal = Calendar::new();
        cal.schedule(t(10.0), ());
        cal.schedule(t(25.0), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), t(10.0));
        cal.pop();
        assert_eq!(cal.now(), t(25.0));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut cal = Calendar::new();
        cal.schedule(t(10.0), 0);
        cal.pop();
        cal.schedule_in(5.0, 1);
        let (at, _) = cal.pop().unwrap();
        assert_eq!(at, t(15.0));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut cal = Calendar::new();
        cal.schedule(t(10.0), ());
        cal.pop();
        cal.schedule(t(5.0), ());
    }

    #[test]
    fn cancellation_drops_event() {
        let mut cal = Calendar::new();
        let tok = cal.schedule(t(10.0), "dead");
        cal.schedule(t(20.0), "alive");
        cal.cancel(tok);
        let (at, e) = cal.pop().unwrap();
        assert_eq!(e, "alive");
        assert_eq!(at, t(20.0));
        assert!(cal.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut cal = Calendar::new();
        let tok = cal.schedule(t(1.0), ());
        cal.pop();
        cal.cancel(tok);
        cal.schedule(t(2.0), ());
        assert!(cal.pop().is_some());
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut cal = Calendar::new();
        let tok = cal.schedule(t(1.0), "x");
        cal.schedule(t(2.0), "y");
        cal.cancel(tok);
        assert_eq!(cal.peek_time(), Some(t(2.0)));
        assert_eq!(cal.pop().unwrap().1, "y");
    }

    #[test]
    fn empty_calendar() {
        let mut cal: Calendar<()> = Calendar::new();
        assert!(cal.is_empty());
        assert_eq!(cal.len(), 0);
        assert!(cal.pop().is_none());
        assert!(cal.peek_time().is_none());
    }

    /// Regression for the seed-design leak: a token cancelled after its
    /// event fired must be recognized as stale. In particular it must NOT
    /// kill the event that reuses the same slab slot.
    #[test]
    fn stale_cancel_cannot_touch_slot_reuse() {
        let mut cal = Calendar::new();
        let stale = cal.schedule(t(1.0), "first");
        assert_eq!(cal.pop().unwrap().1, "first");
        // The next schedule reuses slot 0 with a bumped generation.
        let fresh = cal.schedule(t(2.0), "second");
        assert_eq!(cal.slot_capacity(), 1, "slot must be reused");
        cal.cancel(stale); // stale: must be a no-op
        assert_eq!(cal.pop().unwrap().1, "second", "stale cancel killed a live event");
        // And double-cancel of an already-cancelled token stays inert.
        let tok = cal.schedule(t(3.0), "third");
        cal.cancel(tok);
        cal.cancel(tok);
        cal.cancel(fresh); // fired long ago: no-op
        assert!(cal.pop().is_none());
    }

    /// The seed design kept cancelled-after-fire tokens in a side set
    /// forever; the slab design must keep total bookkeeping bounded by the
    /// peak number of concurrently scheduled events, no matter how many
    /// stale cancels happen.
    #[test]
    fn stale_cancels_leak_nothing() {
        let mut cal = Calendar::new();
        let mut stale = Vec::new();
        for round in 0..1_000u64 {
            let tok = cal.schedule(t(round as f64), round);
            assert!(cal.pop().is_some());
            stale.push(tok);
        }
        for tok in stale {
            cal.cancel(tok); // all stale — every one a no-op
        }
        assert_eq!(cal.slot_capacity(), 1, "bookkeeping grew with stale cancels");
        assert!(cal.is_empty());
        let tok = cal.schedule(t(2_000.0), 7);
        cal.cancel(tok);
        assert!(cal.pop().is_none());
    }

    #[test]
    fn slots_are_recycled_through_the_free_list() {
        let mut cal = Calendar::new();
        for _ in 0..8 {
            cal.schedule(t(1.0), ());
        }
        assert_eq!(cal.slot_capacity(), 8);
        while cal.pop().is_some() {}
        // A new wave of the same size must reuse the 8 slots.
        for _ in 0..8 {
            cal.schedule(t(2.0), ());
        }
        assert_eq!(cal.slot_capacity(), 8, "free list was not reused");
    }

    #[test]
    fn cancelled_entries_count_until_reaped() {
        let mut cal = Calendar::new();
        let tok = cal.schedule(t(1.0), ());
        cal.schedule(t(2.0), ());
        cal.cancel(tok);
        assert_eq!(cal.len(), 2, "tombstone still occupies a heap entry");
        assert_eq!(cal.peek_time(), Some(t(2.0)));
        assert_eq!(cal.len(), 1, "peek reaps front tombstones");
    }

    /// `SimTime::new(-0.0)` passes the non-negativity assert; the bit-
    /// pattern sort key must not send it after every positive time.
    #[test]
    fn negative_zero_time_fires_first() {
        let mut cal = Calendar::new();
        cal.schedule(t(1.0), "later");
        cal.schedule(SimTime::new(-0.0), "first");
        assert_eq!(cal.pop().unwrap().1, "first");
        assert_eq!(cal.pop().unwrap().1, "later");
        assert!(cal.pop().is_none());
    }

    #[test]
    fn interleaved_cancel_pop_keeps_order() {
        let mut cal = Calendar::new();
        let tokens: Vec<_> = (0..50).map(|i| cal.schedule(t(f64::from(i)), i)).collect();
        for (i, tok) in tokens.iter().enumerate() {
            if i % 3 == 0 {
                cal.cancel(*tok);
            }
        }
        let fired: Vec<_> = std::iter::from_fn(|| cal.pop()).map(|(_, e)| e).collect();
        let expected: Vec<_> = (0..50).filter(|i| i % 3 != 0).collect();
        assert_eq!(fired, expected);
    }
}
