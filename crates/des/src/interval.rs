//! Measurement-interval sizing from departure-process statistics (§5).
//!
//! "Taking the departures as a stochastic process and assuming
//! stationarity, it is possible to calculate the necessary duration of
//! measurements to estimate the throughput with a given accuracy and for
//! a given confidence level [Heiss, 1988]. This interval length clearly
//! depends on the parameters of the departure process, especially its
//! second moments."
//!
//! For a stationary departure process with rate `λ` and squared
//! coefficient of variation `c²` of the interdeparture times, the count
//! over a window `T` is asymptotically normal with `Var N(T) ≈ c²·λ·T`
//! (renewal central limit theorem). The throughput estimate `X̂ = N(T)/T`
//! then has relative confidence half-width `z·√(c²/(λT))`, so holding it
//! below `ε` requires
//!
//! ```text
//! λT ≥ z²·c²/ε²      (departures per interval)
//! T  ≥ z²·c²/(ε²·λ)  (interval length)
//! ```
//!
//! For a Poisson-like departure stream (`c² = 1`) at 95% confidence and
//! ±10% accuracy this gives `λT ≥ (1.96/0.1)² ≈ 384` — the paper's
//! "rather hundreds of departures than some tens" made precise.
//!
//! Two estimators feed the formula:
//!
//! * [`InterdepartureStats`] — event-level: absorbs departure instants and
//!   estimates `λ` and `c²` from the interdeparture times (usable inside
//!   the simulator).
//! * [`DispersionEstimator`] — interval-level: absorbs only per-interval
//!   `(count, length)` pairs, the data a runtime sampler already has, and
//!   estimates `c²` as the index of dispersion `Var N / E N`.

use crate::stats::{ConfidenceLevel, Welford};

/// The two-sided standard-normal quantile backing a confidence level.
pub fn z_quantile(level: ConfidenceLevel) -> f64 {
    match level {
        ConfidenceLevel::P90 => 1.645,
        ConfidenceLevel::P95 => 1.960,
        ConfidenceLevel::P99 => 2.576,
    }
}

/// Departures one interval must contain so the throughput estimate has
/// relative half-width ≤ `rel_accuracy` at the given confidence, for a
/// departure process with squared coefficient of variation `scv`.
pub fn required_departures(scv: f64, rel_accuracy: f64, level: ConfidenceLevel) -> f64 {
    assert!(scv >= 0.0, "scv must be non-negative");
    assert!(
        rel_accuracy > 0.0,
        "relative accuracy must be positive (e.g. 0.1 for ±10%)"
    );
    let z = z_quantile(level);
    (z / rel_accuracy).powi(2) * scv
}

/// Interval length (ms) implied by [`required_departures`] at departure
/// rate `rate_per_ms`. Infinite when the rate is zero.
pub fn required_duration_ms(
    rate_per_ms: f64,
    scv: f64,
    rel_accuracy: f64,
    level: ConfidenceLevel,
) -> f64 {
    assert!(rate_per_ms >= 0.0);
    if rate_per_ms == 0.0 {
        return f64::INFINITY;
    }
    required_departures(scv, rel_accuracy, level) / rate_per_ms
}

/// Event-level estimator of the departure process: rate and squared
/// coefficient of variation of interdeparture times.
#[derive(Debug, Clone, Default)]
pub struct InterdepartureStats {
    gaps: Welford,
    last_departure_ms: Option<f64>,
}

impl InterdepartureStats {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a departure at time `now_ms` (must be non-decreasing).
    pub fn on_departure(&mut self, now_ms: f64) {
        if let Some(last) = self.last_departure_ms {
            debug_assert!(now_ms >= last, "departures must be time-ordered");
            self.gaps.push(now_ms - last);
        }
        self.last_departure_ms = Some(now_ms);
    }

    /// Observed interdeparture gaps so far.
    pub fn count(&self) -> u64 {
        self.gaps.count()
    }

    /// Estimated departure rate (per ms); 0 until two departures arrived.
    pub fn rate_per_ms(&self) -> f64 {
        let m = self.gaps.mean();
        if self.gaps.count() == 0 || m <= 0.0 {
            0.0
        } else {
            1.0 / m
        }
    }

    /// Estimated squared coefficient of variation of the interdeparture
    /// times; 1 (the Poisson value) until enough data arrived.
    pub fn scv(&self) -> f64 {
        let m = self.gaps.mean();
        if self.gaps.count() < 2 || m <= 0.0 {
            1.0
        } else {
            self.gaps.variance() / (m * m)
        }
    }

    /// The §5 interval length for this process at the given accuracy and
    /// confidence.
    pub fn required_interval_ms(&self, rel_accuracy: f64, level: ConfidenceLevel) -> f64 {
        required_duration_ms(self.rate_per_ms(), self.scv(), rel_accuracy, level)
    }

    /// Forgets everything (e.g. after a workload shift).
    pub fn reset(&mut self) {
        self.gaps = Welford::new();
        self.last_departure_ms = None;
    }
}

/// Interval-level estimator of the departure process from per-interval
/// `(count, length)` pairs — the only data a harvest-based sampler has.
///
/// For a stationary process, `E N(T) = λT` and `Var N(T) ≈ c²λT`, so the
/// per-interval standardized residuals `(N − λ̂T)² / (λ̂T)` average to `c²`
/// (a χ²-style index-of-dispersion estimate). Intervals of unequal length
/// are handled by that normalization.
#[derive(Debug, Clone, Default)]
pub struct DispersionEstimator {
    total_count: f64,
    total_ms: f64,
    /// `(count, length)` history for the dispersion pass; bounded.
    history: std::collections::VecDeque<(f64, f64)>,
    max_history: usize,
}

impl DispersionEstimator {
    /// Default bound on retained intervals.
    pub const DEFAULT_MAX_HISTORY: usize = 256;

    /// Creates an estimator remembering at most `max_history` intervals.
    pub fn new(max_history: usize) -> Self {
        assert!(max_history >= 2);
        DispersionEstimator {
            total_count: 0.0,
            total_ms: 0.0,
            history: std::collections::VecDeque::with_capacity(max_history),
            max_history,
        }
    }

    /// Records one closed measurement interval.
    pub fn observe(&mut self, departures: u64, interval_ms: f64) {
        if interval_ms <= 0.0 {
            return;
        }
        if self.history.len() == self.max_history {
            if let Some((c, t)) = self.history.pop_front() {
                self.total_count -= c;
                self.total_ms -= t;
            }
        }
        let c = departures as f64;
        self.history.push_back((c, interval_ms));
        self.total_count += c;
        self.total_ms += interval_ms;
    }

    /// Intervals currently in the window.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// True when no intervals have been observed.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// Estimated departure rate (per ms) over the retained window.
    pub fn rate_per_ms(&self) -> f64 {
        if self.total_ms <= 0.0 {
            0.0
        } else {
            self.total_count / self.total_ms
        }
    }

    /// Index-of-dispersion estimate of `c²`; 1 until enough data arrived.
    pub fn scv(&self) -> f64 {
        let rate = self.rate_per_ms();
        if self.history.len() < 2 || rate <= 0.0 {
            return 1.0;
        }
        let mut acc = 0.0;
        let mut used = 0usize;
        for &(c, t) in &self.history {
            let expected = rate * t;
            if expected > 0.0 {
                acc += (c - expected) * (c - expected) / expected;
                used += 1;
            }
        }
        if used < 2 {
            1.0
        } else {
            acc / (used - 1) as f64
        }
    }

    /// The §5 interval length for this process at the given accuracy and
    /// confidence.
    pub fn required_interval_ms(&self, rel_accuracy: f64, level: ConfidenceLevel) -> f64 {
        required_duration_ms(self.rate_per_ms(), self.scv(), rel_accuracy, level)
    }

    /// Forgets everything.
    pub fn reset(&mut self) {
        self.total_count = 0.0;
        self.total_ms = 0.0;
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngStream;

    #[test]
    fn poisson_needs_hundreds_of_departures() {
        // c² = 1, ±10%, 95% → (1.96/0.1)² ≈ 384: "rather hundreds of
        // departures than some tens".
        let m = required_departures(1.0, 0.1, ConfidenceLevel::P95);
        assert!((m - 384.16).abs() < 0.1, "{m}");
        // Tens suffice only for very loose accuracy.
        let loose = required_departures(1.0, 0.3, ConfidenceLevel::P90);
        assert!(loose < 31.0, "{loose}");
    }

    #[test]
    fn required_departures_scales_with_scv_and_accuracy() {
        let base = required_departures(1.0, 0.1, ConfidenceLevel::P95);
        assert!((required_departures(2.0, 0.1, ConfidenceLevel::P95) - 2.0 * base).abs() < 1e-9);
        assert!(
            (required_departures(1.0, 0.05, ConfidenceLevel::P95) - 4.0 * base).abs() < 1e-6
        );
        assert!(required_departures(1.0, 0.1, ConfidenceLevel::P99) > base);
    }

    #[test]
    fn required_duration_inverts_rate() {
        let d = required_duration_ms(0.5, 1.0, 0.1, ConfidenceLevel::P95);
        let m = required_departures(1.0, 0.1, ConfidenceLevel::P95);
        assert!((d - m / 0.5).abs() < 1e-9);
        assert_eq!(
            required_duration_ms(0.0, 1.0, 0.1, ConfidenceLevel::P95),
            f64::INFINITY
        );
    }

    #[test]
    fn interdeparture_stats_on_deterministic_stream() {
        let mut s = InterdepartureStats::new();
        for i in 0..101 {
            s.on_departure(f64::from(i) * 10.0);
        }
        assert_eq!(s.count(), 100);
        assert!((s.rate_per_ms() - 0.1).abs() < 1e-12);
        assert!(s.scv() < 1e-12, "deterministic stream has c² = 0");
        // Zero variance → zero required duration: any interval suffices.
        assert_eq!(s.required_interval_ms(0.1, ConfidenceLevel::P95), 0.0);
    }

    #[test]
    fn interdeparture_stats_on_poisson_stream() {
        let mut rng = RngStream::from_seed(42);
        let mut s = InterdepartureStats::new();
        let mut t = 0.0;
        for _ in 0..20_000 {
            t += -5.0 * (1.0 - rng.uniform01()).ln(); // Exp(mean 5ms)
            s.on_departure(t);
        }
        assert!((s.rate_per_ms() - 0.2).abs() < 0.01, "{}", s.rate_per_ms());
        assert!((s.scv() - 1.0).abs() < 0.05, "{}", s.scv());
        let required = s.required_interval_ms(0.1, ConfidenceLevel::P95);
        // ≈ 384 departures / 0.2 per ms ≈ 1920 ms.
        assert!((required - 1920.0).abs() < 150.0, "{required}");
    }

    #[test]
    fn interdeparture_defaults_before_data() {
        let s = InterdepartureStats::new();
        assert_eq!(s.rate_per_ms(), 0.0);
        assert_eq!(s.scv(), 1.0);
        assert_eq!(
            s.required_interval_ms(0.1, ConfidenceLevel::P95),
            f64::INFINITY
        );
    }

    #[test]
    fn dispersion_estimator_on_poisson_counts() {
        // Poisson counts over equal intervals: dispersion index ≈ 1.
        let mut rng = RngStream::from_seed(7);
        let mut d = DispersionEstimator::new(DispersionEstimator::DEFAULT_MAX_HISTORY);
        for _ in 0..200 {
            // Sample Poisson(100) via exponential gaps in a unit window.
            let mut count = 0u64;
            let mut t = -(1.0 - rng.uniform01()).ln();
            while t < 100.0 {
                count += 1;
                t += -(1.0 - rng.uniform01()).ln();
            }
            d.observe(count, 1000.0); // rate 0.1/ms
        }
        assert!((d.rate_per_ms() - 0.1).abs() < 0.005, "{}", d.rate_per_ms());
        assert!((d.scv() - 1.0).abs() < 0.3, "{}", d.scv());
    }

    #[test]
    fn dispersion_estimator_detects_overdispersion() {
        // Alternating feast/famine counts are overdispersed: c² >> 1.
        let mut d = DispersionEstimator::new(64);
        for i in 0..64 {
            let count = if i % 2 == 0 { 200 } else { 0 };
            d.observe(count, 1000.0);
        }
        assert!(d.scv() > 50.0, "{}", d.scv());
        // And the required interval stretches accordingly.
        let poisson = required_duration_ms(0.1, 1.0, 0.1, ConfidenceLevel::P95);
        assert!(d.required_interval_ms(0.1, ConfidenceLevel::P95) > 20.0 * poisson);
    }

    #[test]
    fn dispersion_estimator_bounds_history() {
        let mut d = DispersionEstimator::new(8);
        for _ in 0..100 {
            d.observe(10, 100.0);
        }
        assert_eq!(d.len(), 8);
        assert!((d.rate_per_ms() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn dispersion_estimator_handles_unequal_intervals() {
        // Perfectly proportional counts over unequal windows: c² ≈ 0.
        let mut d = DispersionEstimator::new(64);
        for i in 1..=32 {
            let t = 500.0 + f64::from(i % 4) * 250.0;
            d.observe((0.2 * t) as u64, t);
        }
        assert!(d.scv() < 0.05, "{}", d.scv());
    }

    #[test]
    fn reset_clears_both_estimators() {
        let mut s = InterdepartureStats::new();
        s.on_departure(0.0);
        s.on_departure(5.0);
        s.reset();
        assert_eq!(s.count(), 0);
        let mut d = DispersionEstimator::new(8);
        d.observe(5, 100.0);
        d.reset();
        assert!(d.is_empty());
        assert_eq!(d.rate_per_ms(), 0.0);
    }
}
