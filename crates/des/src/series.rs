//! Time-series recording.
//!
//! Every figure in the paper is either a curve (performance vs load) or a
//! trajectory (load bound vs time). [`TimeSeries`] accumulates `(t, value)`
//! points during a run; the experiment harness turns them into aligned
//! tables and CSV files.

use crate::time::SimTime;

/// A named sequence of `(time, value)` samples.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TimeSeries {
    name: String,
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_capacity(name, 0)
    }

    /// Creates an empty series with room for `cap` samples — used by the
    /// simulator to size trajectory buffers from the run configuration so
    /// recording never reallocates mid-run.
    pub fn with_capacity(name: impl Into<String>, cap: usize) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::with_capacity(cap),
        }
    }

    /// Ensures room for at least `additional` further samples.
    pub fn reserve(&mut self, additional: usize) {
        self.points.reserve(additional);
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample. Samples must be pushed in non-decreasing time
    /// order (the simulator guarantees this naturally).
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some(&(last_t, _)) = self.points.last() {
            debug_assert!(t.millis() >= last_t, "series must be time-ordered");
        }
        self.points.push((t.millis(), v));
    }

    /// The recorded points as `(millis, value)` pairs.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last recorded value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Mean of the values over the final `fraction` of samples — used to
    /// report steady-state levels of a trajectory (e.g. "where did the bound
    /// settle after the jump").
    pub fn tail_mean(&self, fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&fraction));
        if self.points.is_empty() {
            return f64::NAN;
        }
        let skip = ((1.0 - fraction) * self.points.len() as f64) as usize;
        let tail = &self.points[skip.min(self.points.len() - 1)..];
        tail.iter().map(|&(_, v)| v).sum::<f64>() / tail.len() as f64
    }

    /// Value at time `t` under sample-and-hold interpolation (the bound
    /// `n*` is piecewise constant between controller decisions).
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        let ms = t.millis();
        match self.points.binary_search_by(|&(pt, _)| {
            pt.partial_cmp(&ms).expect("series times are never NaN")
        }) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// Mean absolute difference to a reference series, comparing this
    /// series' value (sample-and-hold) at each reference time. This is the
    /// tracking-error metric used to compare controllers against the true
    /// optimum trajectory.
    pub fn tracking_error(&self, reference: &TimeSeries) -> f64 {
        let mut total = 0.0;
        let mut n = 0u32;
        for &(t, ref_v) in reference.points() {
            if let Some(v) = self.value_at(SimTime::new(t)) {
                total += (v - ref_v).abs();
                n += 1;
            }
        }
        if n == 0 {
            f64::NAN
        } else {
            total / f64::from(n)
        }
    }

    /// Renders `t,value` CSV lines (with a header) into a string buffer.
    /// The buffer is *appended to*, so callers looping over many series
    /// can reuse one allocation across calls.
    pub fn render_csv_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.reserve(16 + self.points.len() * 16);
        let _ = writeln!(out, "t_ms,{}", self.name);
        for &(t, v) in &self.points {
            let _ = writeln!(out, "{t},{v}");
        }
    }

    /// Writes `t,value` CSV lines (with a header) to a writer: the whole
    /// table is rendered into one buffer and written with a single call,
    /// so per-row formatting never reaches the writer (or a syscall).
    pub fn write_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        let mut buf = String::new();
        self.render_csv_into(&mut buf);
        w.write_all(buf.as_bytes())
    }
}

/// Renders several series sharing a time axis as one CSV table, appended
/// to `out`. Series are aligned on the time points of the first series
/// using sample-and-hold.
pub fn render_aligned_csv_into(out: &mut String, series: &[&TimeSeries]) {
    use std::fmt::Write as _;
    let Some(first) = series.first() else {
        return;
    };
    out.reserve(first.len() * 16 * series.len().max(1));
    out.push_str("t_ms");
    for s in series {
        let _ = write!(out, ",{}", s.name());
    }
    out.push('\n');
    for &(t, _) in first.points() {
        let _ = write!(out, "{t}");
        for s in series {
            match s.value_at(SimTime::new(t)) {
                Some(v) => {
                    let _ = write!(out, ",{v}");
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
}

/// Writes several series sharing a time axis as one CSV table (see
/// [`render_aligned_csv_into`]); the whole table goes to the writer in a
/// single call.
pub fn write_aligned_csv<W: std::io::Write>(
    mut w: W,
    series: &[&TimeSeries],
) -> std::io::Result<()> {
    let mut buf = String::new();
    render_aligned_csv_into(&mut buf, series);
    w.write_all(buf.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: f64) -> SimTime {
        SimTime::new(ms)
    }

    fn series(name: &str, pts: &[(f64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new(name);
        for &(tt, v) in pts {
            s.push(t(tt), v);
        }
        s
    }

    #[test]
    fn push_and_read() {
        let s = series("x", &[(0.0, 1.0), (10.0, 2.0)]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.last_value(), Some(2.0));
        assert_eq!(s.points()[1], (10.0, 2.0));
    }

    #[test]
    fn sample_and_hold_lookup() {
        let s = series("x", &[(10.0, 1.0), (20.0, 2.0), (30.0, 3.0)]);
        assert_eq!(s.value_at(t(5.0)), None);
        assert_eq!(s.value_at(t(10.0)), Some(1.0));
        assert_eq!(s.value_at(t(15.0)), Some(1.0));
        assert_eq!(s.value_at(t(20.0)), Some(2.0));
        assert_eq!(s.value_at(t(99.0)), Some(3.0));
    }

    #[test]
    fn tail_mean() {
        let s = series("x", &[(0.0, 0.0), (1.0, 0.0), (2.0, 10.0), (3.0, 10.0)]);
        assert!((s.tail_mean(0.5) - 10.0).abs() < 1e-12);
        assert!((s.tail_mean(1.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn tail_mean_empty_is_nan() {
        let s = TimeSeries::new("e");
        assert!(s.tail_mean(0.5).is_nan());
    }

    #[test]
    fn tracking_error_against_reference() {
        let reference = series("opt", &[(0.0, 100.0), (10.0, 100.0), (20.0, 200.0)]);
        let ctrl = series("n*", &[(0.0, 90.0), (10.0, 110.0), (20.0, 150.0)]);
        // |90-100| + |110-100| + |150-200| = 70 over 3 points
        let err = ctrl.tracking_error(&reference);
        assert!((err - 70.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn tracking_error_perfect_match_is_zero() {
        let a = series("a", &[(0.0, 5.0), (10.0, 6.0)]);
        assert_eq!(a.tracking_error(&a), 0.0);
    }

    #[test]
    fn csv_output() {
        let s = series("tp", &[(0.0, 1.5), (5.0, 2.5)]);
        let mut buf = Vec::new();
        s.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "t_ms,tp\n0,1.5\n5,2.5\n");
    }

    #[test]
    fn aligned_csv_output() {
        let a = series("a", &[(0.0, 1.0), (10.0, 2.0)]);
        let b = series("b", &[(0.0, 5.0)]);
        let mut buf = Vec::new();
        write_aligned_csv(&mut buf, &[&a, &b]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "t_ms,a,b\n0,1,5\n10,2,5\n");
    }
}
