//! Simulation time.
//!
//! Time is measured in milliseconds held in an `f64`. A dedicated newtype
//! keeps the unit visible in signatures and lets us give time a total order
//! (plain `f64` is only `PartialOrd`), which the event calendar requires.
//! `NaN` times are rejected at construction, so the `Ord` implementation is
//! sound for every value that can exist.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in milliseconds since the start of the run.
#[derive(Clone, Copy, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time value. Panics on `NaN` or negative input — both
    /// indicate a modelling bug, never a legitimate state.
    #[inline]
    pub fn new(millis: f64) -> Self {
        assert!(
            millis.is_finite() && millis >= 0.0,
            "SimTime must be finite and non-negative, got {millis}"
        );
        SimTime(millis)
    }

    /// The raw value in milliseconds.
    #[inline]
    pub fn millis(self) -> f64 {
        self.0
    }

    /// The value converted to seconds.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0 / 1000.0
    }

    /// Elapsed time since `earlier`. Panics if `earlier` is in the future —
    /// the simulator never asks for negative spans.
    #[inline]
    pub fn since(self, earlier: SimTime) -> f64 {
        debug_assert!(
            self.0 >= earlier.0,
            "since() called with a later time: {} < {}",
            self.0,
            earlier.0
        );
        self.0 - earlier.0
    }
}

impl Eq for SimTime {}

// SimTime is never NaN (enforced in `new` and `Add`), so total order is safe.
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl PartialOrd<f64> for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &f64) -> Option<std::cmp::Ordering> {
        self.0.partial_cmp(other)
    }
}

impl PartialEq<f64> for SimTime {
    #[inline]
    fn eq(&self, other: &f64) -> bool {
        self.0 == *other
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;

    /// Advances time by `delta` milliseconds.
    #[inline]
    fn add(self, delta: f64) -> SimTime {
        SimTime::new(self.0 + delta)
    }
}

impl AddAssign<f64> for SimTime {
    #[inline]
    fn add_assign(&mut self, delta: f64) {
        *self = *self + delta;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;

    #[inline]
    fn sub(self, rhs: SimTime) -> f64 {
        self.since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = SimTime::new(1500.0);
        assert_eq!(t.millis(), 1500.0);
        assert_eq!(t.seconds(), 1.5);
        assert_eq!(SimTime::ZERO.millis(), 0.0);
    }

    #[test]
    fn ordering_is_total_and_consistent() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert!(a < b);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Less);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::new(10.0) + 5.0;
        assert_eq!(t.millis(), 15.0);
        assert_eq!(t - SimTime::new(10.0), 5.0);
        assert_eq!(t.since(SimTime::new(5.0)), 10.0);
        let mut u = SimTime::ZERO;
        u += 3.0;
        assert_eq!(u.millis(), 3.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_nan() {
        SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative() {
        SimTime::new(-1.0);
    }

    #[test]
    fn comparison_with_raw_f64() {
        let t = SimTime::new(7.0);
        assert!(t > 6.5);
        assert!(t == 7.0);
    }

    #[test]
    fn min_max_and_clone_semantics() {
        let a = SimTime::new(1.0);
        let b = a;
        assert_eq!(a, b);
        assert_eq!(a.min(SimTime::new(0.5)), SimTime::new(0.5));
    }
}
