//! Online statistics for simulation output analysis.
//!
//! The controller side of the paper rests on estimating throughput and
//! related quantities from finite measurement intervals (§5: the interval
//! must be long enough to filter stochastic noise — "rather hundreds of
//! departures than some tens" — but no longer, to stay responsive). These
//! primitives provide the estimates plus the machinery used by the
//! experiment harness to report confidence intervals.

use crate::time::SimTime;

/// Welford's online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }

    /// Half-width of the `level` confidence interval for the mean, using a
    /// Student-t quantile (see [`t_quantile`]).
    pub fn ci_half_width(&self, level: ConfidenceLevel) -> f64 {
        if self.n < 2 {
            return f64::INFINITY;
        }
        t_quantile(level, self.n - 1) * self.std_err()
    }

    /// Merges another accumulator into this one (parallel batch merge).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

/// Supported confidence levels for interval estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ConfidenceLevel {
    /// 90% two-sided.
    P90,
    /// 95% two-sided.
    P95,
    /// 99% two-sided.
    P99,
}

/// Two-sided Student-t quantile for the given confidence level and degrees
/// of freedom. Table-driven for small df, normal approximation beyond.
pub fn t_quantile(level: ConfidenceLevel, df: u64) -> f64 {
    // t-table rows: df 1..=30, then selected larger values.
    const P90: &[f64] = &[
        6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782, 1.771,
        1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706,
        1.703, 1.701, 1.699, 1.697,
    ];
    const P95: &[f64] = &[
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
        2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060,
        2.056, 2.052, 2.048, 2.045, 2.042,
    ];
    const P99: &[f64] = &[
        63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169, 3.106, 3.055,
        3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787,
        2.779, 2.771, 2.763, 2.756, 2.750,
    ];
    let (table, asymptote) = match level {
        ConfidenceLevel::P90 => (P90, 1.645),
        ConfidenceLevel::P95 => (P95, 1.960),
        ConfidenceLevel::P99 => (P99, 2.576),
    };
    if df == 0 {
        return f64::INFINITY;
    }
    if (df as usize) <= table.len() {
        table[df as usize - 1]
    } else if df <= 60 {
        // Linear interpolation between df=30 and the asymptote is accurate
        // to ~1% in this range, plenty for simulation CIs.
        let t30 = table[29];
        let frac = (df - 30) as f64 / 30.0;
        t30 + (asymptote - t30) * frac.min(1.0)
    } else {
        asymptote
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. the number of
/// transactions in the system. Push a new value whenever the signal changes.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TimeWeighted {
    last_t: SimTime,
    last_v: f64,
    area: f64,
    start: SimTime,
    peak: f64,
}

impl TimeWeighted {
    /// Starts tracking at `t0` with initial value `v0`.
    pub fn new(t0: SimTime, v0: f64) -> Self {
        TimeWeighted {
            last_t: t0,
            last_v: v0,
            area: 0.0,
            start: t0,
            peak: v0,
        }
    }

    /// Records that the signal changed to `v` at time `t`.
    pub fn set(&mut self, t: SimTime, v: f64) {
        debug_assert!(t >= self.last_t, "time went backwards");
        self.area += self.last_v * (t - self.last_t);
        self.last_t = t;
        self.last_v = v;
        if v > self.peak {
            self.peak = v;
        }
    }

    /// The current signal value.
    pub fn current(&self) -> f64 {
        self.last_v
    }

    /// The maximum value seen.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// The time average over `[start, t]`.
    pub fn average(&self, t: SimTime) -> f64 {
        let span = t - self.start;
        if span <= 0.0 {
            return self.last_v;
        }
        (self.area + self.last_v * (t - self.last_t)) / span
    }

    /// Restarts averaging from time `t`, keeping the current value.
    pub fn reset(&mut self, t: SimTime) {
        self.area = 0.0;
        self.start = t;
        self.last_t = t;
        self.peak = self.last_v;
    }
}

/// Counts events within a measurement window and converts to a rate.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct WindowCounter {
    count: u64,
    total: u64,
}

impl WindowCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event.
    #[inline]
    pub fn record(&mut self) {
        self.count += 1;
        self.total += 1;
    }

    /// Records `n` events at once.
    #[inline]
    pub fn record_n(&mut self, n: u64) {
        self.count += n;
        self.total += n;
    }

    /// Events in the current window.
    pub fn window_count(&self) -> u64 {
        self.count
    }

    /// Events since creation, across all windows.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Ends the window: returns the rate (events per millisecond) over the
    /// window of length `window_ms` and resets the window count.
    pub fn harvest_rate(&mut self, window_ms: f64) -> f64 {
        let rate = if window_ms > 0.0 {
            self.count as f64 / window_ms
        } else {
            0.0
        };
        self.count = 0;
        rate
    }

    /// Ends the window returning the raw count.
    pub fn harvest_count(&mut self) -> u64 {
        std::mem::take(&mut self.count)
    }
}

/// Fixed-bin histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0);
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Records an observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n_bins = self.bins.len();
            let w = (self.hi - self.lo) / n_bins as f64;
            let idx = ((x - self.lo) / w) as usize;
            self.bins[idx.min(n_bins - 1)] += 1;
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all observations (including out-of-range ones).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile via linear interpolation within the bin.
    /// Returns `lo`/`hi` boundary values when the quantile falls in the
    /// underflow/overflow mass.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.count == 0 {
            return f64::NAN;
        }
        let target = q * self.count as f64;
        let mut acc = self.underflow as f64;
        if target <= acc {
            return self.lo;
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &b) in self.bins.iter().enumerate() {
            let next = acc + b as f64;
            if target <= next && b > 0 {
                let frac = (target - acc) / b as f64;
                return self.lo + w * (i as f64 + frac);
            }
            acc = next;
        }
        self.hi
    }

    /// Read access to bin counts (for table output).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }
}

/// Batch-means estimator: feeds observations into fixed-size batches and
/// treats batch averages as (approximately) independent samples — the
/// standard way to get confidence intervals out of one long, autocorrelated
/// simulation run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct BatchMeans {
    batch_size: u64,
    in_batch: u64,
    batch_sum: f64,
    batches: Welford,
}

impl BatchMeans {
    /// Creates an estimator with the given batch size.
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0);
        BatchMeans {
            batch_size,
            in_batch: 0,
            batch_sum: 0.0,
            batches: Welford::new(),
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.batch_sum += x;
        self.in_batch += 1;
        if self.in_batch == self.batch_size {
            self.batches.push(self.batch_sum / self.batch_size as f64);
            self.batch_sum = 0.0;
            self.in_batch = 0;
        }
    }

    /// Number of completed batches.
    pub fn batches(&self) -> u64 {
        self.batches.count()
    }

    /// Grand mean over completed batches.
    pub fn mean(&self) -> f64 {
        self.batches.mean()
    }

    /// CI half-width over batch means.
    pub fn ci_half_width(&self, level: ConfidenceLevel) -> f64 {
        self.batches.ci_half_width(level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.count(), 8);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.ci_half_width(ConfidenceLevel::P95), f64::INFINITY);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn t_quantile_table_values() {
        assert!((t_quantile(ConfidenceLevel::P95, 1) - 12.706).abs() < 1e-9);
        assert!((t_quantile(ConfidenceLevel::P95, 10) - 2.228).abs() < 1e-9);
        assert!((t_quantile(ConfidenceLevel::P99, 30) - 2.750).abs() < 1e-9);
        assert_eq!(t_quantile(ConfidenceLevel::P95, 10_000), 1.960);
        assert_eq!(t_quantile(ConfidenceLevel::P90, 0), f64::INFINITY);
        // Interpolated region is between the df=30 value and the asymptote.
        let t45 = t_quantile(ConfidenceLevel::P95, 45);
        assert!(t45 < 2.042 && t45 > 1.960);
    }

    #[test]
    fn time_weighted_average() {
        let t = |ms| SimTime::new(ms);
        let mut tw = TimeWeighted::new(t(0.0), 2.0);
        tw.set(t(10.0), 4.0); // 2.0 held for 10ms
        tw.set(t(30.0), 0.0); // 4.0 held for 20ms
        // average over [0, 40]: (2*10 + 4*20 + 0*10)/40 = 100/40
        assert!((tw.average(t(40.0)) - 2.5).abs() < 1e-12);
        assert_eq!(tw.peak(), 4.0);
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn time_weighted_reset() {
        let t = |ms| SimTime::new(ms);
        let mut tw = TimeWeighted::new(t(0.0), 1.0);
        tw.set(t(10.0), 5.0);
        tw.reset(t(10.0));
        // After reset only the value 5.0 over [10,20] counts.
        assert!((tw.average(t(20.0)) - 5.0).abs() < 1e-12);
        assert_eq!(tw.peak(), 5.0);
    }

    #[test]
    fn window_counter_rates() {
        let mut c = WindowCounter::new();
        c.record_n(50);
        assert_eq!(c.window_count(), 50);
        let rate = c.harvest_rate(100.0);
        assert!((rate - 0.5).abs() < 1e-12);
        assert_eq!(c.window_count(), 0);
        assert_eq!(c.total(), 50);
        c.record();
        assert_eq!(c.harvest_count(), 1);
        assert_eq!(c.total(), 51);
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        h.record(-1.0);
        h.record(42.0);
        assert_eq!(h.count(), 12);
        assert_eq!(h.bins().iter().sum::<u64>(), 10);
        assert!(h.quantile(0.5) > 3.0 && h.quantile(0.5) < 7.0);
    }

    #[test]
    fn histogram_quantile_interpolates() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for _ in 0..1000 {
            h.record(50.0);
        }
        let q = h.quantile(0.5);
        assert!((q - 50.5).abs() < 1.0, "median {q}");
    }

    #[test]
    fn histogram_empty_quantile_nan() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!(h.quantile(0.5).is_nan());
    }

    #[test]
    fn batch_means_reduces_to_mean() {
        let mut bm = BatchMeans::new(10);
        for i in 0..100 {
            bm.push(f64::from(i % 10));
        }
        assert_eq!(bm.batches(), 10);
        assert!((bm.mean() - 4.5).abs() < 1e-12);
        // All batches identical -> zero CI width.
        assert!(bm.ci_half_width(ConfidenceLevel::P95) < 1e-9);
    }

    #[test]
    fn batch_means_partial_batch_excluded() {
        let mut bm = BatchMeans::new(10);
        for _ in 0..25 {
            bm.push(1.0);
        }
        assert_eq!(bm.batches(), 2);
    }
}
