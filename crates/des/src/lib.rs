//! `alc-des` — a small, deterministic discrete-event simulation kernel.
//!
//! This crate is the substrate under the transaction-processing simulator of
//! `alc-tpsim`. It provides exactly the pieces a closed queueing-network
//! simulation needs and nothing more:
//!
//! * [`SimTime`] — simulation clock values (milliseconds as `f64`) with a
//!   total order that is safe for use in the event calendar.
//! * [`Calendar`] — the future event list. Events scheduled for equal times
//!   fire in insertion order, which makes runs bit-for-bit reproducible.
//! * [`rng`] — seedable random-number streams. Every model component draws
//!   from its own substream derived from one master seed, so adding a
//!   component never perturbs the random sequence of another.
//! * [`dist`] — the service/think-time distributions used by the paper's
//!   model (constant, uniform, exponential, Erlang, hyperexponential, Zipf).
//! * [`stats`] — online statistics: Welford mean/variance, time-weighted
//!   averages, rate meters, histograms, batch means with confidence
//!   intervals.
//! * [`interval`] — the §5 measurement-interval theory: how long an
//!   interval must be to estimate throughput to a given accuracy and
//!   confidence, from the departure process's rate and second moments.
//! * [`series`] — time-series recording for trajectory output (the paper's
//!   figures are trajectories and curves).
//!
//! The kernel is intentionally synchronous and single-threaded: determinism
//! and replayability matter more for a simulation study than parallelism,
//! and all experiments in the reproduction complete in seconds.

#![warn(missing_docs)]

pub mod calendar;
pub mod dist;
pub mod interval;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;

pub use calendar::{Calendar, EventToken};
pub use time::SimTime;
