//! Deterministic random-number streams.
//!
//! Every model component (terminal think times, CPU bursts, access-set
//! selection, …) owns its own [`RngStream`], derived from a single master
//! seed via SplitMix64 on a component label. Two properties follow:
//!
//! 1. a run is reproducible from one `u64` seed, and
//! 2. adding a component (or drawing more numbers in one) never changes the
//!    sequence another component sees — common-random-numbers variance
//!    reduction across experiment variants comes for free.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Derives independent RNG substreams from one master seed.
#[derive(Debug, Clone, Copy)]
pub struct SeedFactory {
    master: u64,
}

impl SeedFactory {
    /// Creates a factory from the experiment's master seed.
    pub fn new(master: u64) -> Self {
        SeedFactory { master }
    }

    /// Returns the stream for a component label. The same `(seed, label)`
    /// pair always yields the same stream.
    pub fn stream(&self, label: &str) -> RngStream {
        let mut h = self.master ^ 0x9E37_79B9_7F4A_7C15;
        for b in label.as_bytes() {
            h = splitmix64(h ^ u64::from(*b));
        }
        RngStream::from_seed(splitmix64(h))
    }

    /// Returns a numbered stream, for per-entity substreams such as one per
    /// terminal.
    pub fn numbered_stream(&self, label: &str, index: u64) -> RngStream {
        let base = self.stream(label);
        RngStream::from_seed(splitmix64(base.seed ^ splitmix64(index.wrapping_add(1))))
    }
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A single deterministic random stream. Wraps `SmallRng` and remembers its
/// seed so streams can be re-derived and debugged.
#[derive(Debug, Clone)]
pub struct RngStream {
    seed: u64,
    rng: SmallRng,
}

impl RngStream {
    /// Creates a stream directly from a seed.
    pub fn from_seed(seed: u64) -> Self {
        RngStream {
            seed,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A uniform draw in `[0, 1)`.
    #[inline]
    pub fn uniform01(&mut self) -> f64 {
        // 53 random mantissa bits, the standard open-interval construction.
        (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.uniform01()
    }

    /// A uniform integer in `[0, n)` via Lemire's rejection method.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Widening-multiply rejection sampling: unbiased and branch-light.
        let mut x = self.rng.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.rng.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A Bernoulli draw with success probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform01() < p
    }

    /// Samples `count` distinct values from `[0, population)` via Floyd's
    /// algorithm — O(count) draws. Convenience wrapper around
    /// [`RngStream::distinct_below_into`] that allocates the result.
    ///
    /// This is how a transaction picks its `k` data items out of the `D`
    /// item database ("data items are selected randomly, no hot spots").
    pub fn distinct_below(&mut self, population: u64, count: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(count);
        self.distinct_below_into(population, count, &mut out);
        out
    }

    /// Allocation-free [`RngStream::distinct_below`]: replaces the
    /// contents of `out` with the sample. `out` holds exactly the chosen
    /// set at every step and `count` is small (a transaction's `k`), so
    /// the duplicate probe is a linear scan — cheaper than hashing and
    /// free of allocator traffic on the simulator's per-instance path.
    /// Draws the same values in the same order as the seed `HashSet`
    /// implementation.
    #[inline]
    pub fn distinct_below_into(&mut self, population: u64, count: usize, out: &mut Vec<u64>) {
        assert!(
            (count as u64) <= population,
            "cannot draw {count} distinct values from a population of {population}"
        );
        out.clear();
        let start = population - count as u64;
        for j in start..population {
            let t = self.below(j + 1);
            let pick = if out.contains(&t) { j } else { t };
            out.push(pick);
        }
    }

    /// Raw 64 random bits (exposed for the distributions module).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let f = SeedFactory::new(42);
        let mut a = f.stream("cpu");
        let mut b = f.stream("cpu");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_different_sequences() {
        let f = SeedFactory::new(42);
        let mut a = f.stream("cpu");
        let mut b = f.stream("disk");
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3, "streams should be effectively independent");
    }

    #[test]
    fn numbered_streams_are_distinct() {
        let f = SeedFactory::new(7);
        let mut s0 = f.numbered_stream("terminal", 0);
        let mut s1 = f.numbered_stream("terminal", 1);
        assert_ne!(s0.next_u64(), s1.next_u64());
    }

    #[test]
    fn uniform01_in_range_and_mean_reasonable() {
        let mut s = RngStream::from_seed(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = s.uniform01();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn below_is_unbiased_over_small_range() {
        let mut s = RngStream::from_seed(2);
        let mut counts = [0u32; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[s.below(7) as usize] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 7.0;
            assert!(
                (f64::from(c) - expected).abs() < expected * 0.05,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn distinct_below_yields_distinct_in_range() {
        let mut s = RngStream::from_seed(3);
        for _ in 0..100 {
            let v = s.distinct_below(50, 8);
            assert_eq!(v.len(), 8);
            let set: std::collections::HashSet<_> = v.iter().collect();
            assert_eq!(set.len(), 8);
            assert!(v.iter().all(|&x| x < 50));
        }
    }

    #[test]
    fn distinct_below_full_population() {
        let mut s = RngStream::from_seed(4);
        let mut v = s.distinct_below(10, 10);
        v.sort_unstable();
        assert_eq!(v, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn distinct_below_rejects_oversample() {
        let mut s = RngStream::from_seed(5);
        s.distinct_below(3, 4);
    }

    #[test]
    fn chance_extremes() {
        let mut s = RngStream::from_seed(6);
        assert!(!s.chance(0.0));
        assert!(s.chance(1.0));
    }
}
