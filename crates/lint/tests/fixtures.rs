//! Per-rule fixture tests: every rule must provably (a) fire on its
//! `fire.rs` fixture and (b) be silenced by a reasoned `allow(...)` in
//! its `suppressed.rs` fixture. Rendered diagnostics are snapshot-
//! compared against the checked-in `*.expected` files; rebless with
//! `UPDATE_LINT_FIXTURES=1 cargo test -p alc-lint --test fixtures`.

use std::fmt::Write as _;
use std::path::PathBuf;

use alc_lint::config::Config;
use alc_lint::report::render_text;
use alc_lint::rules::{lint_file, Finding, RULES};
use alc_lint::source::SourceFile;

/// A config that puts the fixture tree in every rule's scope.
fn fixture_config() -> Config {
    let mut toml =
        String::from("[workspace]\nroots = [\".\"]\n[scopes.all]\ninclude = [\"fixtures\"]\n");
    for r in RULES {
        let _ = writeln!(toml, "[rules.{}]\nscope = \"all\"", r.name);
    }
    Config::parse(&toml).expect("fixture config parses")
}

fn fixture_dir(rule: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule)
}

fn lint_fixture(rule: &str, which: &str) -> (Vec<Finding>, String) {
    let abs = fixture_dir(rule).join(which);
    let text = std::fs::read_to_string(&abs)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", abs.display()));
    let rel = format!("fixtures/{rule}/{which}");
    let file = SourceFile::new(rel, &text);
    let findings = lint_file(&file, &fixture_config(), Some(rule));
    let mut rendered = String::new();
    for f in &findings {
        rendered.push_str(&render_text(f, file.line_text(f.line)));
        rendered.push('\n');
    }
    (findings, rendered)
}

/// Compares `rendered` against the checked-in snapshot, reblessing when
/// `UPDATE_LINT_FIXTURES` is set (mirroring the repo's `UPDATE_GOLDEN`).
fn check_snapshot(rule: &str, which: &str, rendered: &str) {
    let path = fixture_dir(rule).join(which.replace(".rs", ".expected"));
    if std::env::var_os("UPDATE_LINT_FIXTURES").is_some() {
        std::fs::write(&path, rendered).expect("write snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); rebless with UPDATE_LINT_FIXTURES=1",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "snapshot mismatch for {rule}/{which}; rebless with UPDATE_LINT_FIXTURES=1"
    );
}

fn check_rule(rule: &str) {
    // fire.rs: the rule must produce unsuppressed findings, all its own.
    let (findings, rendered) = lint_fixture(rule, "fire.rs");
    assert!(
        !findings.is_empty(),
        "{rule}: fire.rs produced no findings"
    );
    for f in &findings {
        assert_eq!(f.rule, rule, "{rule}: fire.rs produced a stray {} finding", f.rule);
        assert!(
            f.suppressed.is_none(),
            "{rule}: fire.rs finding unexpectedly suppressed: {f:?}"
        );
    }
    check_snapshot(rule, "fire.rs", &rendered);

    // suppressed.rs: the same violations, every one covered by a
    // reasoned allow().
    let (findings, rendered) = lint_fixture(rule, "suppressed.rs");
    assert!(
        !findings.is_empty(),
        "{rule}: suppressed.rs produced no findings (nothing to suppress proves nothing)"
    );
    for f in &findings {
        assert_eq!(f.rule, rule, "{rule}: suppressed.rs produced a stray {} finding", f.rule);
        let reason = f
            .suppressed
            .as_deref()
            .unwrap_or_else(|| panic!("{rule}: unsuppressed finding in suppressed.rs: {f:?}"));
        assert!(!reason.trim().is_empty(), "{rule}: empty suppression reason");
    }
    check_snapshot(rule, "suppressed.rs", &rendered);
}

macro_rules! fixture_tests {
    ($($test_name:ident => $rule:literal;)*) => {
        $(
            #[test]
            fn $test_name() {
                check_rule($rule);
            }
        )*

        /// The macro list must cover the whole registry, so adding a rule
        /// without a fixture fails here.
        #[test]
        fn every_rule_has_a_fixture_test() {
            let listed = [$($rule),*];
            assert_eq!(listed.len(), RULES.len(), "fixture list out of sync with RULES");
            for r in RULES {
                assert!(listed.contains(&r.name), "rule `{}` has no fixture test", r.name);
            }
        }
    };
}

fixture_tests! {
    hash_container => "hash-container";
    wall_clock => "wall-clock";
    sleep => "sleep";
    env_read => "env-read";
    rng_construction => "rng-construction";
    seed_literal => "seed-literal";
    hot_alloc => "hot-alloc";
    purity_rng => "purity-rng";
    purity_time => "purity-time";
    purity_io => "purity-io";
    purity_global_state => "purity-global-state";
    unwrap_in_lib => "unwrap-in-lib";
    panic_in_lib => "panic-in-lib";
    suppression_hygiene => "suppression-hygiene";
}
