//! The linter applied to its own repository: `cargo test` fails if any
//! unsuppressed finding exists anywhere in the workspace, making the
//! static invariants part of the tier-1 gate rather than a separate
//! opt-in tool.

use std::path::{Path, PathBuf};

use alc_lint::{load_config, run_workspace};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

#[test]
fn workspace_has_no_unsuppressed_findings() {
    let root = repo_root();
    let cfg = load_config(&root).expect("lint.toml loads");
    let result = run_workspace(&root, &cfg).expect("workspace lints");
    let offending: Vec<String> = result
        .unsuppressed()
        .map(|f| format!("{}:{}:{} [{}] {}", f.path, f.line, f.col, f.rule, f.message))
        .collect();
    assert!(
        offending.is_empty(),
        "unsuppressed lint findings:\n{}",
        offending.join("\n")
    );
}

#[test]
fn purity_scoped_modules_carry_no_suppressions_at_all() {
    // The acceptance bar for controller/, estimator/, meta/ and the
    // runtime's law/ directory is stricter than "clean": the purity
    // rules must hold with no inline allows, so decision logic stays
    // genuinely pure — any clock or I/O belongs in the runtime shell,
    // which carries its own reasoned allows.
    let root = repo_root();
    let mut offending = Vec::new();
    for dir in [
        "crates/core/src/controller",
        "crates/core/src/estimator",
        "crates/core/src/meta",
        "crates/runtime/src/law",
    ] {
        scan_for_allows(&root.join(dir), &mut offending);
    }
    assert!(
        offending.is_empty(),
        "purity-scoped modules must not contain alc-lint allows:\n{}",
        offending.join("\n")
    );
}

fn scan_for_allows(dir: &Path, out: &mut Vec<String>) {
    for entry in std::fs::read_dir(dir).expect("purity dir exists") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            scan_for_allows(&path, out);
        } else if path.extension().is_some_and(|x| x == "rs") {
            let text = std::fs::read_to_string(&path).expect("read source");
            for (i, line) in text.lines().enumerate() {
                if line.contains("alc-lint:") {
                    out.push(format!("{}:{}: {}", path.display(), i + 1, line.trim()));
                }
            }
        }
    }
}
