fn last(xs: &[f64]) -> f64 {
    *xs.last().unwrap()
}
