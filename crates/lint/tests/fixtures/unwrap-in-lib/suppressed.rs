fn last(xs: &[f64]) -> f64 {
    *xs.last().unwrap() // alc-lint: allow(unwrap-in-lib, reason="caller guarantees xs is non-empty via the constructor")
}
