fn update_requested() -> bool {
    std::env::var_os("UPDATE_GOLDEN").is_some()
}
