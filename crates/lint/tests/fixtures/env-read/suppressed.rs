fn update_requested() -> bool {
    // alc-lint: allow(env-read, reason="explicit opt-in rebless switch, not a simulation input")
    std::env::var_os("UPDATE_GOLDEN").is_some()
}
