fn stream() -> RngStream {
    RngStream::from_seed(42) // alc-lint: allow(seed-literal, reason="fixed fixture seed keeps this benchmark reproducible")
}
