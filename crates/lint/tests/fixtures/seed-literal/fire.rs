fn stream() -> RngStream {
    RngStream::from_seed(42)
}
