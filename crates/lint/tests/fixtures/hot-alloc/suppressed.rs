fn scratch() -> Vec<u64> {
    let names = format!("{a}-{b}"); // alc-lint: allow(hot-alloc, reason="construction-time labelling, before the measurement window")
    let copies = xs.to_vec(); // alc-lint: allow(hot-alloc, reason="setup API, called once before the run starts")
    Vec::new() // alc-lint: allow(hot-alloc, reason="empty Vec::new is allocation-free")
}
