fn scratch() -> Vec<u64> {
    let names = format!("{a}-{b}");
    let copies = xs.to_vec();
    Vec::new()
}
