fn nap() {
    // alc-lint: allow(sleep, reason="backoff in the live gate, never reached by the simulator")
    std::thread::sleep(std::time::Duration::from_millis(5));
}
