fn decide(stream: &mut RngStream) -> f64 {
    stream.next_f64()
}
