// alc-lint: allow(purity-rng, reason="fixture only; real policy code tolerates no suppressions")
fn decide(stream: &mut RngStream) -> f64 {
    stream.next_f64()
}
