fn fresh() -> SmallRng { // alc-lint: allow(rng-construction, reason="this fixture stands in for alc_des::rng itself")
    // alc-lint: allow(rng-construction, reason="this fixture stands in for alc_des::rng itself")
    SmallRng::seed_from_u64(master)
}
