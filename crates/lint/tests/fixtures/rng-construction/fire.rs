fn fresh() -> SmallRng {
    SmallRng::seed_from_u64(master)
}
