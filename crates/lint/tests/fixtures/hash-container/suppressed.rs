use std::collections::HashMap; // alc-lint: allow(hash-container, reason="lookup-only index; iteration order never observed")
