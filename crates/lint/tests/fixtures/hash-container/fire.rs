use std::collections::HashMap;
