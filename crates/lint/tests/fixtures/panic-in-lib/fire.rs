fn pick(kind: u8) -> u8 {
    match kind {
        0 => 1,
        _ => unreachable!("kind is validated at parse time"),
    }
}
