fn pick(kind: u8) -> u8 {
    match kind {
        0 => 1,
        // alc-lint: allow(panic-in-lib, reason="kind is validated at parse time, so this arm cannot be reached")
        _ => unreachable!("kind is validated at parse time"),
    }
}
