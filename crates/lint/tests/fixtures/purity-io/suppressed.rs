fn report(value: f64) {
    println!("mpl = {value}"); // alc-lint: allow(purity-io, reason="fixture only; real policy code tolerates no suppressions")
}
