fn report(value: f64) {
    println!("mpl = {value}");
}
