fn observe() -> Instant {
    Instant::now()
}
