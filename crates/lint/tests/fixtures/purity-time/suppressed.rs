fn observe() -> Instant { // alc-lint: allow(purity-time, reason="fixture only; real policy code tolerates no suppressions")
    // alc-lint: allow(purity-time, reason="fixture only; real policy code tolerates no suppressions")
    Instant::now()
}
