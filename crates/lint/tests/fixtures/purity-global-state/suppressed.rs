// alc-lint: allow(purity-global-state, reason="fixture only; real policy code tolerates no suppressions")
static DECISIONS: AtomicU64 = AtomicU64::new(0);
