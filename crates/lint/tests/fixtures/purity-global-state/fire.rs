static DECISIONS: AtomicU64 = AtomicU64::new(0);
