fn noisy() {
    // alc-lint: allow(suppression-hygiene, reason="demonstrating a malformed directive in docs")
    let a = 1; // alc-lint: allow(hash-container)
}
