fn noisy() {
    let a = 1; // alc-lint: allow(hash-container)
    let b = 2; // alc-lint: allow(no-such-rule, reason="rule does not exist")
    let c = 3; // alc-lint: allow(wall-clock, reason="nothing here to suppress")
}
