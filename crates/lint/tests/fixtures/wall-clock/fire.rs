fn stamp() -> Instant {
    Instant::now()
}
