fn stamp() -> Instant { // alc-lint: allow(wall-clock, reason="real-time component, not on the simulation path")
    // alc-lint: allow(wall-clock, reason="real-time component, not on the simulation path")
    Instant::now()
}
