//! `lint.toml` — the checked-in configuration.
//!
//! The analyzer is dependency-free, so this module hand-parses the TOML
//! subset the config needs: `[section]` / `[section.sub]` headers,
//! `key = "string"`, `key = ["a", "b"]`, `key = true|false`, and `#`
//! comments. Anything outside that subset is a hard error — config typos
//! must never silently relax a rule.
//!
//! Shape:
//!
//! ```toml
//! [workspace]
//! roots   = ["crates", "src"]
//! exclude = ["crates/lint/tests/fixtures"]
//!
//! [scopes.sim]
//! include = ["crates/des/src"]
//! exclude = ["crates/core/src/gate.rs"]
//!
//! [rules.hash-container]
//! scope = "sim"                 # file set the rule applies to
//! exclude = ["crates/x/y.rs"]   # per-rule opt-outs (rare; prefer inline allows)
//! include-tests = false         # default: skip #[cfg(test)]/#[test] regions
//!
//! [rules.wall-clock]
//! scopes = ["sim", "runtime-shell"]  # a rule may bind a union of scopes
//! ```

use std::collections::BTreeMap;

/// A path filter: repo-relative prefixes to include and exclude.
///
/// A file matches when any `include` entry is a prefix of its
/// forward-slash repo-relative path and no `exclude` entry is.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PathSet {
    /// Path prefixes that bring a file into the set.
    pub include: Vec<String>,
    /// Path prefixes carved back out.
    pub exclude: Vec<String>,
}

impl PathSet {
    /// Whether `path` (repo-relative, `/`-separated) is in the set.
    pub fn contains(&self, path: &str) -> bool {
        self.include.iter().any(|p| prefix_match(p, path))
            && !self.exclude.iter().any(|p| prefix_match(p, path))
    }
}

/// Prefix match on path components: `crates/des` matches
/// `crates/des/src/rng.rs` but not `crates/des-extra/x.rs`.
fn prefix_match(prefix: &str, path: &str) -> bool {
    path == prefix
        || (path.starts_with(prefix) && path.as_bytes().get(prefix.len()) == Some(&b'/'))
}

/// Per-rule configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleConfig {
    /// Names of the scopes (from `[scopes.*]`) the rule applies to: a
    /// file is linted when *any* of them contains it. Populated by
    /// either `scope = "name"` or `scopes = ["a", "b"]`.
    pub scopes: Vec<String>,
    /// Extra per-rule excludes on top of the scopes'.
    pub exclude: Vec<String>,
    /// Run the rule inside `#[cfg(test)]` / `#[test]` regions too.
    pub include_tests: bool,
}

impl RuleConfig {
    /// Whether `path` is in any of the rule's scopes (rule-level
    /// excludes are checked separately by the driver).
    pub fn in_scope(&self, cfg: &Config, path: &str) -> bool {
        self.scopes
            .iter()
            .any(|s| cfg.scopes.get(s).is_some_and(|set| set.contains(path)))
    }
}

/// The parsed `lint.toml`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Config {
    /// Directories walked by `--workspace`, repo-relative.
    pub roots: Vec<String>,
    /// Paths never linted (fixtures, vendored shims).
    pub exclude: Vec<String>,
    /// Named file sets referenced by rules.
    pub scopes: BTreeMap<String, PathSet>,
    /// Rule name → configuration. Every rule the binary knows must be
    /// present (checked in [`crate::rules::check_config`]).
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Config {
    /// Parses the config, validating structure but not rule names (the
    /// rule registry does that, so the error can list what exists).
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section: Vec<String> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let inner = rest
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {lineno}: unterminated section header"))?;
                section = inner.split('.').map(|s| s.trim().to_string()).collect();
                if section.iter().any(String::is_empty) {
                    return Err(format!("line {lineno}: empty section name in `{line}`"));
                }
                match section[0].as_str() {
                    "workspace" if section.len() == 1 => {}
                    "scopes" | "rules" if section.len() == 2 => {}
                    _ => {
                        return Err(format!(
                            "line {lineno}: unknown section `[{}]` (want [workspace], \
                             [scopes.<name>] or [rules.<rule>])",
                            section.join(".")
                        ));
                    }
                }
                continue;
            }
            let (key, value) = parse_kv(line, lineno)?;
            cfg.apply(&section, &key, value, lineno)?;
        }
        if cfg.roots.is_empty() {
            return Err("[workspace] roots must list at least one directory".to_string());
        }
        for (name, rule) in &cfg.rules {
            if rule.scopes.is_empty() {
                return Err(format!("rule `{name}` binds no scope"));
            }
            for scope in &rule.scopes {
                if !cfg.scopes.contains_key(scope) {
                    return Err(format!("rule `{name}` references unknown scope `{scope}`"));
                }
            }
        }
        Ok(cfg)
    }

    fn apply(
        &mut self,
        section: &[String],
        key: &str,
        value: Value,
        lineno: usize,
    ) -> Result<(), String> {
        let fail = |what: &str| Err(format!("line {lineno}: {what}"));
        match section.first().map(String::as_str) {
            Some("workspace") => match key {
                "roots" => self.roots = value.into_strings(lineno)?,
                "exclude" => self.exclude = value.into_strings(lineno)?,
                _ => return fail(&format!("unknown [workspace] key `{key}`")),
            },
            Some("scopes") => {
                let scope = self.scopes.entry(section[1].clone()).or_default();
                match key {
                    "include" => scope.include = value.into_strings(lineno)?,
                    "exclude" => scope.exclude = value.into_strings(lineno)?,
                    _ => return fail(&format!("unknown scope key `{key}`")),
                }
            }
            Some("rules") => {
                let rule = self.rules.entry(section[1].clone()).or_default();
                match key {
                    "scope" => rule.scopes = vec![value.into_string(lineno)?],
                    "scopes" => rule.scopes = value.into_strings(lineno)?,
                    "exclude" => rule.exclude = value.into_strings(lineno)?,
                    "include-tests" => rule.include_tests = value.into_bool(lineno)?,
                    _ => return fail(&format!("unknown rule key `{key}`")),
                }
            }
            _ => return fail(&format!("key `{key}` outside any section")),
        }
        Ok(())
    }
}

enum Value {
    Str(String),
    List(Vec<String>),
    Bool(bool),
}

impl Value {
    fn into_string(self, lineno: usize) -> Result<String, String> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(format!("line {lineno}: expected a quoted string")),
        }
    }
    fn into_strings(self, lineno: usize) -> Result<Vec<String>, String> {
        match self {
            Value::List(v) => Ok(v),
            _ => Err(format!("line {lineno}: expected an array of strings")),
        }
    }
    fn into_bool(self, lineno: usize) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(b),
            _ => Err(format!("line {lineno}: expected true or false")),
        }
    }
}

/// Strips a trailing `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_kv(line: &str, lineno: usize) -> Result<(String, Value), String> {
    let (key, rest) = line
        .split_once('=')
        .ok_or_else(|| format!("line {lineno}: expected `key = value`, got `{line}`"))?;
    let key = key.trim().to_string();
    let rest = rest.trim();
    let value = if rest == "true" {
        Value::Bool(true)
    } else if rest == "false" {
        Value::Bool(false)
    } else if let Some(inner) = rest.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| format!("line {lineno}: unterminated array (one line per array)"))?;
        let mut items = Vec::new();
        for piece in split_top_level_commas(inner) {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            items.push(unquote(piece, lineno)?);
        }
        Value::List(items)
    } else {
        Value::Str(unquote(rest, lineno)?)
    };
    Ok((key, value))
}

fn split_top_level_commas(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, b) in s.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b',' if !in_str => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

fn unquote(s: &str, lineno: usize) -> Result<String, String> {
    s.strip_prefix('"')
        .and_then(|x| x.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("line {lineno}: expected a quoted string, got `{s}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[workspace]
roots = ["crates", "src"]      # trailing comment
exclude = ["crates/lint/tests/fixtures"]

[scopes.sim]
include = ["crates/des/src", "crates/core/src"]
exclude = ["crates/core/src/gate.rs"]

[rules.hash-container]
scope = "sim"

[rules.unwrap-in-lib]
scope = "sim"
include-tests = false
exclude = ["crates/des/src/stats.rs"]
"#;

    #[test]
    fn parses_the_full_shape() {
        let cfg = Config::parse(SAMPLE).unwrap();
        assert_eq!(cfg.roots, vec!["crates", "src"]);
        assert_eq!(cfg.scopes["sim"].include.len(), 2);
        assert_eq!(cfg.rules["hash-container"].scopes, vec!["sim"]);
        assert_eq!(
            cfg.rules["unwrap-in-lib"].exclude,
            vec!["crates/des/src/stats.rs"]
        );
    }

    #[test]
    fn path_set_prefix_semantics() {
        let cfg = Config::parse(SAMPLE).unwrap();
        let sim = &cfg.scopes["sim"];
        assert!(sim.contains("crates/des/src/rng.rs"));
        assert!(sim.contains("crates/core/src/meta/mod.rs"));
        assert!(!sim.contains("crates/core/src/gate.rs"));
        assert!(!sim.contains("crates/des/src-other/x.rs"));
        assert!(!sim.contains("crates/bench/src/lib.rs"));
    }

    #[test]
    fn rejects_unknown_sections_keys_and_scopes() {
        assert!(Config::parse("[nope]\nx = \"y\"").is_err());
        assert!(Config::parse("[workspace]\nroots = [\"a\"]\nbogus = \"y\"").is_err());
        let dangling = "[workspace]\nroots = [\"a\"]\n[rules.x]\nscope = \"missing\"";
        let err = Config::parse(dangling).unwrap_err();
        assert!(err.contains("unknown scope"), "{err}");
        let scopeless = "[workspace]\nroots = [\"a\"]\n[rules.x]\nexclude = [\"b\"]";
        let err = Config::parse(scopeless).unwrap_err();
        assert!(err.contains("binds no scope"), "{err}");
    }

    #[test]
    fn rules_may_bind_a_union_of_scopes() {
        let cfg = Config::parse(
            "[workspace]\nroots = [\"crates\"]\n\
             [scopes.a]\ninclude = [\"crates/a\"]\n\
             [scopes.b]\ninclude = [\"crates/b\"]\n\
             [rules.wall-clock]\nscopes = [\"a\", \"b\"]\n",
        )
        .unwrap();
        let rc = &cfg.rules["wall-clock"];
        assert!(rc.in_scope(&cfg, "crates/a/src/x.rs"));
        assert!(rc.in_scope(&cfg, "crates/b/src/y.rs"));
        assert!(!rc.in_scope(&cfg, "crates/c/src/z.rs"));
    }

    #[test]
    fn rejects_unquoted_and_unterminated_values() {
        assert!(Config::parse("[workspace]\nroots = [bare]").is_err());
        assert!(Config::parse("[workspace]\nroots = [\"a\"").is_err());
        assert!(Config::parse("[workspace]\nroots = \"not-a-list\"").is_err());
        assert!(Config::parse("no_section = \"x\"").is_err());
    }

    #[test]
    fn empty_roots_is_an_error() {
        assert!(Config::parse("[scopes.s]\ninclude = [\"a\"]").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::parse("[workspace]\nroots = [\"cr#ates\"]").unwrap();
        assert_eq!(cfg.roots, vec!["cr#ates"]);
    }
}
