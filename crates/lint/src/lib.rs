//! `alc-lint` — repo-specific static analysis for the adaptive-load-
//! control workspace.
//!
//! The repo's guarantees (byte-identical goldens, serial == parallel
//! scenario runs, zero-alloc hot paths, pure controllers) are enforced
//! dynamically by tests — which only see the code paths they execute.
//! This crate turns the same invariants into *static* rules over the
//! whole source tree: a dependency-free token-level analyzer (no `syn`
//! in the vendored offline shim set) with a checked-in `lint.toml`
//! scoping rules to file sets, and inline
//! `// alc-lint: allow(rule, reason="…")` suppressions that require a
//! reason.
//!
//! Layers:
//! * [`lexer`] — the hand-rolled Rust lexer (tokens + comments);
//! * [`source`] — per-file context: test regions, suppressions;
//! * [`config`] — the `lint.toml` subset parser and path scoping;
//! * [`rules`] — the rule registry and token matchers;
//! * [`report`] — rustc-style text and JSON rendering.

#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

use std::path::{Path, PathBuf};

use config::Config;
use rules::Finding;
use source::SourceFile;

/// The outcome of a lint run.
#[derive(Debug)]
pub struct RunResult {
    /// All findings (suppressed and not), sorted by path/line/col/rule.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files analyzed.
    pub files_scanned: usize,
}

impl RunResult {
    /// Findings not covered by an `allow(...)` — the CI-gating set.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }
}

/// Reads and validates `lint.toml` from `root`.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let cfg = Config::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    rules::check_config(&cfg)?;
    Ok(cfg)
}

/// Lints the whole workspace under `root` per the config's roots and
/// excludes. File order (and so finding order) is deterministic.
pub fn run_workspace(root: &Path, cfg: &Config) -> Result<RunResult, String> {
    let mut files = Vec::new();
    for r in &cfg.roots {
        let dir = root.join(r);
        if !dir.exists() {
            return Err(format!("workspace root `{r}` does not exist under {}", root.display()));
        }
        collect_rs_files(&dir, &mut files)?;
    }
    let mut rel: Vec<(String, PathBuf)> = files
        .into_iter()
        .filter_map(|p| {
            let r = rel_path(root, &p)?;
            (!cfg.exclude.iter().any(|e| prefix(e, &r))).then_some((r, p))
        })
        .collect();
    rel.sort();
    rel.dedup();
    lint_files(&rel, cfg)
}

/// Lints an explicit file list (paths relative to `root`).
pub fn run_files(root: &Path, cfg: &Config, paths: &[String]) -> Result<RunResult, String> {
    let rel: Vec<(String, PathBuf)> = paths
        .iter()
        .map(|p| (p.replace('\\', "/"), root.join(p)))
        .collect();
    lint_files(&rel, cfg)
}

fn lint_files(rel: &[(String, PathBuf)], cfg: &Config) -> Result<RunResult, String> {
    let mut findings = Vec::new();
    for (rel_path, abs) in rel {
        let text = std::fs::read_to_string(abs)
            .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        let file = SourceFile::new(rel_path.clone(), &text);
        findings.extend(rules::lint_file(&file, cfg, None));
    }
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
    });
    Ok(RunResult {
        findings,
        files_scanned: rel.len(),
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if dir.is_file() {
        if dir.extension().is_some_and(|x| x == "rs") {
            out.push(dir.to_path_buf());
        }
        return Ok(());
    }
    let rd = std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = rd
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            // `target/` can appear anywhere cargo runs; never descend.
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&p, out)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, p: &Path) -> Option<String> {
    let r = p.strip_prefix(root).ok()?;
    let s = r.to_str()?;
    Some(s.replace('\\', "/"))
}

fn prefix(prefix: &str, path: &str) -> bool {
    path == prefix
        || (path.starts_with(prefix) && path.as_bytes().get(prefix.len()) == Some(&b'/'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("alc_lint_lib_test").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const CFG: &str = r#"
[workspace]
roots = ["src"]
exclude = ["src/skip"]
[scopes.all]
include = ["src"]
[scopes.none]
include = []
[rules.hash-container]
scope = "all"
[rules.wall-clock]
scope = "all"
[rules.sleep]
scope = "all"
[rules.env-read]
scope = "none"
[rules.rng-construction]
scope = "none"
[rules.seed-literal]
scope = "none"
[rules.hot-alloc]
scope = "none"
[rules.purity-rng]
scope = "none"
[rules.purity-time]
scope = "none"
[rules.purity-io]
scope = "none"
[rules.purity-global-state]
scope = "none"
[rules.unwrap-in-lib]
scope = "none"
[rules.panic-in-lib]
scope = "none"
[rules.suppression-hygiene]
scope = "all"
"#;

    #[test]
    fn walks_sorted_and_respects_excludes() {
        let root = scratch("walk");
        std::fs::create_dir_all(root.join("src/skip")).unwrap();
        std::fs::write(root.join("src/b.rs"), "use std::collections::HashMap;\n").unwrap();
        std::fs::write(root.join("src/a.rs"), "fn ok() {}\n").unwrap();
        std::fs::write(root.join("src/skip/bad.rs"), "use std::collections::HashSet;\n")
            .unwrap();
        std::fs::write(root.join("lint.toml"), CFG).unwrap();
        let cfg = load_config(&root).unwrap();
        let res = run_workspace(&root, &cfg).unwrap();
        assert_eq!(res.files_scanned, 2, "skip/ must be excluded");
        let uns: Vec<_> = res.unsuppressed().collect();
        assert_eq!(uns.len(), 1);
        assert_eq!(uns[0].path, "src/b.rs");
    }

    #[test]
    fn suppressed_findings_do_not_gate() {
        let root = scratch("suppress");
        std::fs::create_dir_all(root.join("src")).unwrap();
        std::fs::write(
            root.join("src/a.rs"),
            "use std::collections::HashMap; // alc-lint: allow(hash-container, reason=\"lookup only\")\n",
        )
        .unwrap();
        std::fs::write(root.join("lint.toml"), CFG).unwrap();
        let cfg = load_config(&root).unwrap();
        let res = run_workspace(&root, &cfg).unwrap();
        assert_eq!(res.findings.len(), 1);
        assert_eq!(res.unsuppressed().count(), 0);
    }

    #[test]
    fn missing_rule_in_config_is_rejected() {
        let root = scratch("missing");
        std::fs::create_dir_all(root.join("src")).unwrap();
        let truncated = CFG.replace("[rules.panic-in-lib]\nscope = \"none\"\n", "");
        std::fs::write(root.join("lint.toml"), truncated).unwrap();
        let err = load_config(&root).unwrap_err();
        assert!(err.contains("panic-in-lib"), "{err}");
    }
}
