//! The rule registry and token matchers.
//!
//! Every rule is a token pattern evaluated inside a configured file
//! scope (see `lint.toml`). Four families guard the properties the
//! test suite can only check dynamically:
//!
//! * **determinism** — simulation paths must not observe hash-container
//!   iteration order, wall clocks, sleeps, or the environment;
//! * **rng** — randomness is constructed in `alc_des::rng` only, and
//!   never from ad-hoc integer seed literals;
//! * **hot-path** — modules on the zero-alloc steady-state path must not
//!   allocate (complementing the counting-allocator gates, which only
//!   see executed paths);
//! * **purity** — `controller/`, `estimator/`, `meta/` stay free of RNG,
//!   time, I/O and global state, pre-clearing the `alc-runtime`
//!   extraction;
//!
//! plus **hygiene**: `unwrap`/`panic!` policy in library code, and the
//! suppression system policing itself.

use crate::config::Config;
use crate::lexer::{TokKind, Token};
use crate::source::SourceFile;

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Rule id, as used in `lint.toml` and `allow(...)`.
    pub name: &'static str,
    /// Rule family (diagnostic prefix, report grouping).
    pub family: &'static str,
    /// One-line description (README table, `--rules`).
    pub summary: &'static str,
    /// Remediation hint appended to diagnostics.
    pub help: &'static str,
}

/// Every rule the binary knows, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "hash-container",
        family: "determinism",
        summary: "no HashMap/HashSet in simulation paths (iteration order is nondeterministic)",
        help: "use a BTreeMap/BTreeSet or a direct-indexed table",
    },
    Rule {
        name: "wall-clock",
        family: "determinism",
        summary: "no Instant/SystemTime in simulation paths (simulated time only)",
        help: "thread simulated time through explicitly; wall clocks break replayability",
    },
    Rule {
        name: "sleep",
        family: "determinism",
        summary: "no thread::sleep in simulation paths",
        help: "schedule a calendar event instead of blocking the thread",
    },
    Rule {
        name: "env-read",
        family: "determinism",
        summary: "no std::env reads in simulation paths (runs must be spec-determined)",
        help: "plumb configuration through the spec/config structs",
    },
    Rule {
        name: "rng-construction",
        family: "rng",
        summary: "RNG construction/seeding only inside alc_des::rng",
        help: "derive a stream from a SeedFactory substream instead",
    },
    Rule {
        name: "seed-literal",
        family: "rng",
        summary: "no integer seed literals outside tests",
        help: "seeds come from config/replication plumbing, not literals",
    },
    Rule {
        name: "hot-alloc",
        family: "hot-path",
        summary: "no allocation tokens (Vec::new, vec!, format!, to_vec, to_owned, collect, Box::new) in hot modules",
        help: "reuse pooled scratch buffers, or allow() construction-time allocation with a reason",
    },
    Rule {
        name: "purity-rng",
        family: "purity",
        summary: "controllers/estimators/meta policies take no randomness",
        help: "policy decisions must be a pure function of their observations",
    },
    Rule {
        name: "purity-time",
        family: "purity",
        summary: "controllers/estimators/meta policies read no clocks (Duration values are fine)",
        help: "time arrives inside Measurement/MetaObservation, never from a clock",
    },
    Rule {
        name: "purity-io",
        family: "purity",
        summary: "controllers/estimators/meta policies do no I/O",
        help: "return data; let the caller decide what to print or persist",
    },
    Rule {
        name: "purity-global-state",
        family: "purity",
        summary: "controllers/estimators/meta policies hold no global or shared mutable state",
        help: "state lives in the policy struct so instances stay independent",
    },
    Rule {
        name: "unwrap-in-lib",
        family: "hygiene",
        summary: "no .unwrap() in library code (tests/bins exempt)",
        help: "return a Result, or .expect(\"why this cannot fail\")",
    },
    Rule {
        name: "panic-in-lib",
        family: "hygiene",
        summary: "no panic!/todo!/unimplemented!/unreachable! in library code",
        help: "return an error; assert!/debug_assert! remain available for invariants",
    },
    Rule {
        name: "suppression-hygiene",
        family: "hygiene",
        summary: "allow() directives need a reason, a known rule, and a finding to suppress",
        help: "fix the directive or delete it",
    },
];

/// Looks up a rule by name.
pub fn rule(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// Config ⇄ registry consistency: every known rule must be configured,
/// every configured rule must exist.
pub fn check_config(cfg: &Config) -> Result<(), String> {
    for r in RULES {
        if !cfg.rules.contains_key(r.name) {
            return Err(format!("lint.toml does not configure rule `{}`", r.name));
        }
    }
    for name in cfg.rules.keys() {
        if rule(name).is_none() {
            let known: Vec<&str> = RULES.iter().map(|r| r.name).collect();
            return Err(format!(
                "lint.toml configures unknown rule `{name}` (known: {})",
                known.join(", ")
            ));
        }
    }
    Ok(())
}

/// One finding, suppressed or not.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id.
    pub rule: &'static str,
    /// Repo-relative file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What was found.
    pub message: String,
    /// `Some(reason)` when an `allow(...)` covered it.
    pub suppressed: Option<String>,
}

/// Runs every enabled rule over one file. `only` restricts to a single
/// rule (fixture tests); `None` runs all.
pub fn lint_file(file: &SourceFile<'_>, cfg: &Config, only: Option<&str>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let enabled = |name: &str| only.is_none_or(|o| o == name);

    for r in RULES {
        if r.name == "suppression-hygiene" || !enabled(r.name) {
            continue;
        }
        let rc = &cfg.rules[r.name];
        if !rc.in_scope(cfg, &file.path)
            || rc.exclude.iter().any(|p| crate_path_match(p, &file.path))
        {
            continue;
        }
        let toks: Vec<&Token<'_>> = file
            .lexed
            .tokens
            .iter()
            .filter(|t| rc.include_tests || !file.in_test_region(t.line))
            .collect();
        scan_rule(r.name, &toks, &file.path, &mut findings);
    }

    apply_suppressions(file, cfg, enabled("suppression-hygiene"), &mut findings);
    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    findings
}

fn crate_path_match(prefix: &str, path: &str) -> bool {
    path == prefix
        || (path.starts_with(prefix) && path.as_bytes().get(prefix.len()) == Some(&b'/'))
}

/// Matches inline `allow(...)` directives against the findings, then
/// reports the suppression system's own violations.
fn apply_suppressions(
    file: &SourceFile<'_>,
    cfg: &Config,
    hygiene_enabled: bool,
    findings: &mut Vec<Finding>,
) {
    let mut used = vec![false; file.suppressions.len()];
    for f in findings.iter_mut() {
        for (i, s) in file.suppressions.iter().enumerate() {
            if s.rule == f.rule && s.target_line == f.line {
                f.suppressed = Some(s.reason.clone());
                used[i] = true;
            }
        }
    }
    if !hygiene_enabled {
        return;
    }
    let mut hygiene: Vec<Finding> = Vec::new();
    for issue in &file.suppression_issues {
        hygiene.push(Finding {
            rule: "suppression-hygiene",
            path: file.path.clone(),
            line: issue.line,
            col: 1,
            message: issue.message.clone(),
            suppressed: None,
        });
    }
    for (i, s) in file.suppressions.iter().enumerate() {
        if rule(&s.rule).is_none() {
            hygiene.push(Finding {
                rule: "suppression-hygiene",
                path: file.path.clone(),
                line: s.line,
                col: 1,
                message: format!("allow() names unknown rule `{}`", s.rule),
                suppressed: None,
            });
        } else if !used[i] && s.rule != "suppression-hygiene" {
            // Rule disabled this run (fixture mode) ⇒ can't judge usefulness.
            let rule_ran = cfg.rules.contains_key(&s.rule);
            if rule_ran {
                hygiene.push(Finding {
                    rule: "suppression-hygiene",
                    path: file.path.clone(),
                    line: s.line,
                    col: 1,
                    message: format!(
                        "unused suppression: no `{}` finding on line {}",
                        s.rule, s.target_line
                    ),
                    suppressed: None,
                });
            }
        }
    }
    // Hygiene findings are themselves suppressible — uniformity keeps the
    // fixture contract (“every rule provably suppressible”) honest.
    for f in &mut hygiene {
        for s in &file.suppressions {
            if s.rule == "suppression-hygiene" && s.target_line == f.line && s.line != f.line {
                f.suppressed = Some(s.reason.clone());
            }
        }
    }
    findings.append(&mut hygiene);
}

/// Dispatches one rule's token scan.
fn scan_rule(name: &'static str, toks: &[&Token<'_>], path: &str, out: &mut Vec<Finding>) {
    let mut push = |t: &Token<'_>, message: String| {
        out.push(Finding {
            rule: name,
            path: path.to_string(),
            line: t.line,
            col: t.col,
            message,
            suppressed: None,
        });
    };
    let ident = |i: usize, s: &str| -> bool {
        toks.get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
    };
    let punct = |i: usize, s: &str| -> bool {
        toks.get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
    };

    for i in 0..toks.len() {
        let t = toks[i];
        let is_ident = t.kind == TokKind::Ident;
        match name {
            "hash-container"
                if is_ident && (t.text == "HashMap" || t.text == "HashSet") => {
                    push(t, format!("`{}` in a determinism-scoped module", t.text));
                }
            "wall-clock"
                if is_ident && matches!(t.text, "Instant" | "SystemTime" | "UNIX_EPOCH") => {
                    push(t, format!("wall-clock type `{}` in a simulation path", t.text));
                }
            "sleep"
                if is_ident && t.text == "sleep" && i >= 2 && ident(i - 2, "thread") && punct(i - 1, "::")
                => {
                    push(t, "`thread::sleep` in a simulation path".to_string());
                }
            "env-read"
                if is_ident && t.text == "env" && punct(i + 1, "::") => {
                    let what = toks.get(i + 2).map_or("?", |x| x.text);
                    push(t, format!("environment access `env::{what}` in a simulation path"));
                }
            "rng-construction"
                if is_ident
                    && matches!(
                        t.text,
                        "SmallRng"
                            | "StdRng"
                            | "ThreadRng"
                            | "OsRng"
                            | "thread_rng"
                            | "from_entropy"
                            | "SeedableRng"
                            | "seed_from_u64"
                    )
                => {
                    push(
                        t,
                        format!("RNG construction `{}` outside alc_des::rng", t.text),
                    );
                }
            "seed-literal"
                if t.kind == TokKind::Int && i >= 2 && punct(i - 1, "(") => {
                    let callee = toks[i - 2];
                    let literal_call = (callee.kind == TokKind::Ident
                        && matches!(callee.text, "from_seed" | "seed_from_u64"))
                        || (ident(i - 2, "new")
                            && i >= 4
                            && punct(i - 3, "::")
                            && ident(i - 4, "SeedFactory"));
                    if literal_call {
                        push(
                            t,
                            format!("integer seed literal `{}` passed to `{}`", t.text, callee.text),
                        );
                    }
                }
            "hot-alloc" => {
                if is_ident
                    && matches!(t.text, "Vec" | "Box" | "String")
                    && punct(i + 1, "::")
                    && ident(i + 2, "new")
                {
                    push(t, format!("`{}::new` in a hot-path module", t.text));
                } else if is_ident && matches!(t.text, "vec" | "format") && punct(i + 1, "!") {
                    push(t, format!("`{}!` in a hot-path module", t.text));
                } else if is_ident
                    && matches!(t.text, "to_vec" | "to_owned" | "to_string" | "collect")
                    && i >= 1
                    && punct(i - 1, ".")
                {
                    push(t, format!("allocating call `.{}()` in a hot-path module", t.text));
                }
            }
            "purity-rng"
                if is_ident
                    && matches!(
                        t.text,
                        "rand"
                            | "RngStream"
                            | "SeedFactory"
                            | "SmallRng"
                            | "StdRng"
                            | "ThreadRng"
                            | "thread_rng"
                            | "from_entropy"
                            | "seed_from_u64"
                            | "from_seed"
                    )
                => {
                    push(t, format!("randomness (`{}`) in a purity-scoped module", t.text));
                }
            "purity-time" => {
                if is_ident && matches!(t.text, "Instant" | "SystemTime" | "UNIX_EPOCH") {
                    push(t, format!("clock type `{}` in a purity-scoped module", t.text));
                } else if is_ident
                    && t.text == "time"
                    && i >= 2
                    && ident(i - 2, "std")
                    && punct(i - 1, "::")
                    && !(punct(i + 1, "::") && ident(i + 2, "Duration"))
                {
                    push(t, "`std::time` (beyond Duration) in a purity-scoped module".to_string());
                } else if is_ident && t.text == "sleep" && i >= 2 && ident(i - 2, "thread") && punct(i - 1, "::")
                {
                    push(t, "`thread::sleep` in a purity-scoped module".to_string());
                }
            }
            "purity-io" => {
                if is_ident
                    && matches!(t.text, "println" | "print" | "eprintln" | "eprint" | "dbg")
                    && punct(i + 1, "!")
                {
                    push(t, format!("I/O macro `{}!` in a purity-scoped module", t.text));
                } else if is_ident
                    && matches!(t.text, "fs" | "io" | "net" | "process")
                    && i >= 2
                    && ident(i - 2, "std")
                    && punct(i - 1, "::")
                {
                    push(t, format!("`std::{}` in a purity-scoped module", t.text));
                } else if is_ident && matches!(t.text, "File" | "TcpStream" | "UdpSocket") {
                    push(t, format!("I/O type `{}` in a purity-scoped module", t.text));
                }
            }
            "purity-global-state" => {
                if is_ident && t.text == "static" {
                    push(t, "`static` item in a purity-scoped module".to_string());
                } else if is_ident
                    && (t.text.starts_with("Atomic")
                        || matches!(
                            t.text,
                            "thread_local"
                                | "OnceLock"
                                | "OnceCell"
                                | "LazyLock"
                                | "Mutex"
                                | "RwLock"
                                | "RefCell"
                                | "UnsafeCell"
                        ))
                {
                    push(
                        t,
                        format!("shared/global mutable state (`{}`) in a purity-scoped module", t.text),
                    );
                }
            }
            "unwrap-in-lib"
                if is_ident && t.text == "unwrap" && i >= 1 && punct(i - 1, ".") && punct(i + 1, "(")
                => {
                    push(t, "`.unwrap()` in library code".to_string());
                }
            "panic-in-lib"
                if is_ident
                    && matches!(t.text, "panic" | "todo" | "unimplemented" | "unreachable")
                    && punct(i + 1, "!")
                => {
                    push(t, format!("`{}!` in library code", t.text));
                }
            // Rule names come from RULES, so this arm is never taken; a
            // silent no-op keeps the dispatcher panic-free (the linter
            // holds itself to `panic-in-lib`).
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    /// A config that puts `x.rs` in every scope, so any rule can fire.
    fn test_config() -> Config {
        let mut toml = String::from(
            "[workspace]\nroots = [\".\"]\n[scopes.all]\ninclude = [\"x.rs\"]\n",
        );
        for r in RULES {
            toml.push_str(&format!("[rules.{}]\nscope = \"all\"\n", r.name));
        }
        Config::parse(&toml).unwrap()
    }

    fn findings(src: &str, only: &str) -> Vec<Finding> {
        let f = SourceFile::new("x.rs".into(), src);
        lint_file(&f, &test_config(), Some(only))
    }

    #[test]
    fn registry_and_config_stay_consistent() {
        assert!(RULES.len() >= 10, "the issue demands ≥10 rules");
        check_config(&test_config()).unwrap();
        let mut missing = test_config();
        missing.rules.remove("hash-container");
        assert!(check_config(&missing).is_err());
    }

    #[test]
    fn hash_container_fires_on_use_and_import() {
        let f = findings("use std::collections::HashMap;\nlet s: HashSet<u8>;", "hash-container");
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "#[cfg(test)]\nmod tests { use std::collections::HashMap; }\n";
        assert!(findings(src, "hash-container").is_empty());
    }

    #[test]
    fn sleep_needs_the_thread_path() {
        assert_eq!(findings("std::thread::sleep(d);", "sleep").len(), 1);
        assert!(findings("my.sleep(d);", "sleep").is_empty());
    }

    #[test]
    fn seed_literal_catches_literal_seeds_only() {
        assert_eq!(findings("RngStream::from_seed(42)", "seed-literal").len(), 1);
        assert_eq!(findings("SeedFactory::new(7)", "seed-literal").len(), 1);
        assert!(findings("RngStream::from_seed(seed)", "seed-literal").is_empty());
        assert!(findings("SeedFactory::new(cfg.seed)", "seed-literal").is_empty());
        assert!(findings("numbered_stream(\"t\", 3)", "seed-literal").is_empty());
    }

    #[test]
    fn hot_alloc_catches_the_banned_set() {
        let src = "let a = Vec::new(); let b = vec![1]; let c = format!(\"x\");\n\
                   let d = xs.to_vec(); let e = s.to_owned(); let f: Vec<_> = it.collect();\n\
                   let g = Box::new(1); let h = n.to_string();";
        let f = findings(src, "hot-alloc");
        assert_eq!(f.len(), 8, "{f:?}");
        // `Vec::with_capacity` is allowed: preallocation is the pattern
        // the hot path is built on.
        assert!(findings("Vec::with_capacity(8)", "hot-alloc").is_empty());
    }

    #[test]
    fn purity_rules_fire_and_spare_pure_idioms() {
        assert_eq!(findings("let r = SeedFactory::new(s);", "purity-rng").len(), 1);
        assert_eq!(findings("let t = Instant::now();", "purity-time").len(), 1);
        assert!(findings("use std::time::Duration;", "purity-time").is_empty());
        assert_eq!(findings("println!(\"x\");", "purity-io").len(), 1);
        assert_eq!(findings("static X: u8 = 0;", "purity-global-state").len(), 1);
        assert_eq!(findings("let c = AtomicU64::new(0);", "purity-global-state").len(), 1);
        // `&'static str` is a lifetime, not a static item.
        assert!(findings("fn name(&self) -> &'static str { \"x\" }", "purity-global-state")
            .is_empty());
    }

    #[test]
    fn unwrap_and_panic_rules() {
        assert_eq!(findings("x.unwrap();", "unwrap-in-lib").len(), 1);
        assert!(findings("x.expect(\"why\");", "unwrap-in-lib").is_empty());
        assert!(findings("fn unwrap() {}", "unwrap-in-lib").is_empty());
        assert_eq!(findings("panic!(\"boom\");", "panic-in-lib").len(), 1);
        assert!(findings("assert!(ok);", "panic-in-lib").is_empty());
    }

    #[test]
    fn suppression_marks_findings_and_unused_allows_fire() {
        let src = "use std::collections::HashMap; // alc-lint: allow(hash-container, reason=\"lookup only\")\n";
        let f = SourceFile::new("x.rs".into(), src);
        let all = lint_file(&f, &test_config(), None);
        let hc: Vec<_> = all.iter().filter(|x| x.rule == "hash-container").collect();
        assert_eq!(hc.len(), 1);
        assert_eq!(hc[0].suppressed.as_deref(), Some("lookup only"));
        assert!(all.iter().all(|x| x.rule != "suppression-hygiene"));

        let unused = "let x = 1; // alc-lint: allow(hash-container, reason=\"nothing here\")\n";
        let f = SourceFile::new("x.rs".into(), unused);
        let all = lint_file(&f, &test_config(), None);
        assert!(all.iter().any(|x| x.rule == "suppression-hygiene"
            && x.message.contains("unused")));
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "// HashMap in a comment\nlet s = \"HashMap::new()\";\n";
        assert!(findings(src, "hash-container").is_empty());
    }
}
