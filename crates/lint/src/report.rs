//! Diagnostic rendering: rustc-style text and a machine-readable JSON
//! report.
//!
//! JSON is emitted by hand (the crate is dependency-free); the writer
//! escapes strings per RFC 8259 and emits keys in a fixed order so the
//! report is byte-deterministic for a given finding set.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::rules::{rule, Finding};

/// Renders one finding in rustc style, with the offending source line.
///
/// ```text
/// error[determinism::hash-container]: `HashMap` in a determinism-scoped module
///   --> crates/tpsim/src/cc/timestamp.rs:15:23
///    |
/// 15 | use std::collections::HashMap;
///    |                       ^
///    = help: use a BTreeMap/BTreeSet or a direct-indexed table
/// ```
pub fn render_text(f: &Finding, source_line: &str) -> String {
    let meta = rule(f.rule).expect("finding carries a registered rule");
    let severity = if f.suppressed.is_some() { "allowed" } else { "error" };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{severity}[{}::{}]: {}",
        meta.family, f.rule, f.message
    );
    let _ = writeln!(out, "  --> {}:{}:{}", f.path, f.line, f.col);
    let gutter = f.line.to_string().len().max(2);
    let _ = writeln!(out, "{:gutter$} |", "");
    let _ = writeln!(out, "{:gutter$} | {}", f.line, source_line.trim_end());
    let caret_pad = source_line
        .chars()
        .take(f.col.saturating_sub(1) as usize)
        .map(|c| if c == '\t' { '\t' } else { ' ' })
        .collect::<String>();
    let _ = writeln!(out, "{:gutter$} | {caret_pad}^", "");
    match &f.suppressed {
        Some(reason) => {
            let _ = writeln!(out, "{:gutter$} = allowed: {reason}", "");
        }
        None => {
            let _ = writeln!(out, "{:gutter$} = help: {}", "", meta.help);
        }
    }
    out
}

/// The whole-run JSON report.
pub fn render_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut per_rule: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for f in findings {
        let e = per_rule.entry(f.rule).or_default();
        if f.suppressed.is_some() {
            e.1 += 1;
        } else {
            e.0 += 1;
        }
    }
    let unsuppressed = findings.iter().filter(|f| f.suppressed.is_none()).count();

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"tool\": \"alc-lint\",");
    let _ = writeln!(out, "  \"version\": {},", json_str(env!("CARGO_PKG_VERSION")));
    let _ = writeln!(out, "  \"files_scanned\": {files_scanned},");
    let _ = writeln!(out, "  \"summary\": {{");
    let _ = writeln!(out, "    \"total\": {},", findings.len());
    let _ = writeln!(out, "    \"unsuppressed\": {unsuppressed},");
    let _ = writeln!(out, "    \"suppressed\": {},", findings.len() - unsuppressed);
    let _ = writeln!(out, "    \"per_rule\": {{");
    let n = per_rule.len();
    for (i, (name, (uns, sup))) in per_rule.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        let _ = writeln!(
            out,
            "      {}: {{\"unsuppressed\": {uns}, \"suppressed\": {sup}}}{comma}",
            json_str(name)
        );
    }
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"findings\": [");
    let n = findings.len();
    for (i, f) in findings.iter().enumerate() {
        let meta = rule(f.rule).expect("finding carries a registered rule");
        let comma = if i + 1 < n { "," } else { "" };
        let mut line = String::from("    {");
        let _ = write!(line, "\"rule\": {}, ", json_str(f.rule));
        let _ = write!(line, "\"family\": {}, ", json_str(meta.family));
        let _ = write!(line, "\"file\": {}, ", json_str(&f.path));
        let _ = write!(line, "\"line\": {}, \"col\": {}, ", f.line, f.col);
        let _ = write!(line, "\"message\": {}, ", json_str(&f.message));
        match &f.suppressed {
            Some(r) => {
                let _ = write!(line, "\"suppressed\": true, \"reason\": {}", json_str(r));
            }
            None => {
                let _ = write!(line, "\"suppressed\": false");
            }
        }
        let _ = writeln!(out, "{line}}}{comma}");
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

/// RFC 8259 string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(suppressed: Option<&str>) -> Finding {
        Finding {
            rule: "hash-container",
            path: "crates/x/src/a.rs".into(),
            line: 15,
            col: 23,
            message: "`HashMap` in a determinism-scoped module".into(),
            suppressed: suppressed.map(str::to_string),
        }
    }

    #[test]
    fn text_rendering_shape() {
        let text = render_text(&sample(None), "use std::collections::HashMap;");
        assert!(text.starts_with("error[determinism::hash-container]:"));
        assert!(text.contains("--> crates/x/src/a.rs:15:23"));
        assert!(text.contains("15 | use std::collections::HashMap;"));
        assert!(text.contains("= help:"));
        // Caret lands under column 23.
        let caret_line = text.lines().find(|l| l.trim_end().ends_with('^')).expect("caret");
        assert_eq!(caret_line.find('^'), Some(22 + " | ".len() + 2));
    }

    #[test]
    fn suppressed_findings_render_as_allowed() {
        let text = render_text(&sample(Some("lookup only")), "use x;");
        assert!(text.starts_with("allowed[determinism::hash-container]:"));
        assert!(text.contains("= allowed: lookup only"));
    }

    #[test]
    fn json_is_valid_and_complete() {
        let findings = vec![sample(None), sample(Some("ok \"quoted\" reason"))];
        let json = render_json(&findings, 3);
        // The vendored serde_json isn't available here (dependency-free
        // crate), so check structure textually.
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\"unsuppressed\": 1,"));
        assert!(json.contains("\"suppressed\": 1,"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"hash-container\": {\"unsuppressed\": 1, \"suppressed\": 1}"));
        assert_eq!(json.matches("\"rule\":").count(), 2);
    }

    #[test]
    fn json_escapes_control_chars() {
        assert_eq!(json_str("a\nb\t\"c\\"), "\"a\\nb\\t\\\"c\\\\\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
