//! A hand-rolled token-level Rust lexer.
//!
//! The linter's rules are token patterns, not syntax trees: the vendored
//! offline dependency set cannot absorb a real parser (`syn`), and none
//! of the enforced invariants need one — "`HashMap` appears in a
//! simulation module" is a fact about tokens. The lexer therefore has to
//! get exactly one thing right: *never* misclassify text, so that string
//! contents, comments and lifetimes can't produce false findings. It
//! handles line/block comments (nested), string/raw-string/byte-string
//! literals, char literals vs. lifetimes, numeric literals with
//! separators/suffixes, and multi-char `::` paths.
//!
//! Comments are not discarded: they come back alongside the tokens so the
//! suppression layer can find `// alc-lint: allow(...)` directives.

/// What a token is, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `static`, `fn`, …).
    Ident,
    /// A lifetime such as `'a` or `'static` — distinct from [`TokKind::Ident`]
    /// so that `&'static str` never trips the `static`-item rule.
    Lifetime,
    /// Integer literal (any base, with separators/suffix).
    Int,
    /// Float literal.
    Float,
    /// String, raw-string or byte-string literal.
    Str,
    /// Character or byte literal.
    Char,
    /// Punctuation. `::` is one token; everything else is one char.
    Punct,
}

/// One token, borrowing its text from the source.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    /// Classification.
    pub kind: TokKind,
    /// Exact source text (for `Str`, includes the quotes).
    pub text: &'a str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in bytes).
    pub col: u32,
}

/// One comment (line or block), borrowing its text from the source.
#[derive(Debug, Clone, Copy)]
pub struct Comment<'a> {
    /// Comment text including the `//` / `/*` introducer.
    pub text: &'a str,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The lexer's full output for one file.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    /// All non-comment tokens, in order.
    pub tokens: Vec<Token<'a>>,
    /// All comments, in order.
    pub comments: Vec<Comment<'a>>,
}

/// Lexes `src`. Unterminated constructs are tolerated (the remainder is
/// swallowed into the open token): the linter must degrade gracefully on
/// any input, never panic.
pub fn lex(src: &str) -> Lexed<'_> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed<'a>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Lexed<'a> {
        while self.pos < self.bytes.len() {
            let (line, col, start) = (self.line, self.col, self.pos);
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    let end = self.line_comment_end();
                    self.out.comments.push(Comment {
                        text: &self.src[start..end],
                        line,
                    });
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    let end = self.block_comment_end();
                    self.out.comments.push(Comment {
                        text: &self.src[start..end],
                        line,
                    });
                }
                b'r' | b'b' => {
                    if let Some(kind) = self.raw_or_byte_string() {
                        // `raw_or_byte_string` consumed the literal.
                        self.push(kind, start, line, col);
                    } else {
                        // Plain identifier starting with r/b (incl. `r#raw`
                        // identifiers, which lex as `r` `#` `ident`).
                        self.bump();
                        while self.ident_continue() {
                            self.bump();
                        }
                        self.push(TokKind::Ident, start, line, col);
                    }
                }
                b'"' => {
                    self.string_literal();
                    self.push(TokKind::Str, start, line, col);
                }
                b'\'' => {
                    if self.lifetime_ahead() {
                        self.bump(); // '
                        while self.ident_continue() {
                            self.bump();
                        }
                        self.push(TokKind::Lifetime, start, line, col);
                    } else {
                        self.char_literal();
                        self.push(TokKind::Char, start, line, col);
                    }
                }
                b'0'..=b'9' => {
                    let kind = self.number();
                    self.push(kind, start, line, col);
                }
                _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => {
                    self.bump();
                    while self.ident_continue() {
                        self.bump();
                    }
                    self.push(TokKind::Ident, start, line, col);
                }
                b':' if self.peek(1) == Some(b':') => {
                    self.bump();
                    self.bump();
                    self.push(TokKind::Punct, start, line, col);
                }
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, start, line, col);
                }
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            text: &self.src[start..self.pos],
            line,
            col,
        });
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn ident_continue(&self) -> bool {
        matches!(self.peek(0), Some(b) if b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80)
    }

    fn line_comment_end(&mut self) -> usize {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        self.pos
    }

    fn block_comment_end(&mut self) -> usize {
        self.bump(); // /
        self.bump(); // *
        let mut depth = 1u32;
        while let Some(b) = self.peek(0) {
            if b == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if b == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                self.bump();
            }
        }
        self.pos
    }

    /// Consumes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'` etc. if the
    /// cursor is on one; returns the token kind it consumed. A bare
    /// `r`/`b` identifier is left untouched (`None`).
    fn raw_or_byte_string(&mut self) -> Option<TokKind> {
        let mut look = 1; // past the leading r/b
        let raw = if self.bytes[self.pos] == b'b' {
            match self.peek(look) {
                Some(b'r') => {
                    look += 1;
                    true
                }
                Some(b'"') => false,
                Some(b'\'') => {
                    // b'x' byte literal: consume as a char literal.
                    self.bump();
                    self.char_literal();
                    return Some(TokKind::Char);
                }
                _ => return None,
            }
        } else {
            true // leading r
        };
        let mut hashes = 0usize;
        while self.peek(look) == Some(b'#') {
            hashes += 1;
            look += 1;
        }
        if self.peek(look) != Some(b'"') || (!raw && hashes > 0) {
            return None; // an identifier like `r#keyword` or plain `r`
        }
        if raw {
            for _ in 0..look + 1 {
                self.bump(); // r, hashes, opening quote
            }
            // Scan for `"` followed by `hashes` hashes. No escapes in raw
            // strings.
            'scan: while let Some(b) = self.peek(0) {
                if b == b'"' {
                    for h in 0..hashes {
                        if self.peek(1 + h) != Some(b'#') {
                            self.bump();
                            continue 'scan;
                        }
                    }
                    for _ in 0..hashes + 1 {
                        self.bump();
                    }
                    return Some(TokKind::Str);
                }
                self.bump();
            }
            Some(TokKind::Str) // unterminated: swallowed to EOF
        } else {
            self.bump(); // b
            self.string_literal();
            Some(TokKind::Str)
        }
    }

    fn string_literal(&mut self) {
        self.bump(); // opening "
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// `'a` is a lifetime, `'a'` / `'\n'` are chars. After the quote: an
    /// identifier start NOT followed by a closing quote means lifetime.
    fn lifetime_ahead(&self) -> bool {
        match self.peek(1) {
            Some(b) if b == b'_' || b.is_ascii_alphabetic() => {
                // Walk the identifier; a `'` right after it makes it a char.
                let mut look = 2;
                while matches!(self.peek(look), Some(c) if c == b'_' || c.is_ascii_alphanumeric())
                {
                    look += 1;
                }
                self.peek(look) != Some(b'\'')
            }
            _ => false,
        }
    }

    fn char_literal(&mut self) {
        self.bump(); // opening '
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                b'\'' => {
                    self.bump();
                    return;
                }
                // A newline inside a char literal means it wasn't one;
                // stop rather than swallow the file.
                b'\n' => return,
                _ => self.bump(),
            }
        }
    }

    fn number(&mut self) -> TokKind {
        let mut kind = TokKind::Int;
        if self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            self.bump();
            self.bump();
            while matches!(self.peek(0), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
                self.bump();
            }
            return TokKind::Int;
        }
        while matches!(self.peek(0), Some(b) if b.is_ascii_digit() || b == b'_') {
            self.bump();
        }
        // A `.` makes it a float only when followed by a digit — `0..n`
        // ranges and `1.max(x)` method calls stay integers.
        if self.peek(0) == Some(b'.') && matches!(self.peek(1), Some(b) if b.is_ascii_digit()) {
            kind = TokKind::Float;
            self.bump();
            while matches!(self.peek(0), Some(b) if b.is_ascii_digit() || b == b'_') {
                self.bump();
            }
        }
        if matches!(self.peek(0), Some(b'e' | b'E'))
            && (matches!(self.peek(1), Some(b) if b.is_ascii_digit())
                || (matches!(self.peek(1), Some(b'+' | b'-'))
                    && matches!(self.peek(2), Some(b) if b.is_ascii_digit())))
        {
            kind = TokKind::Float;
            self.bump();
            self.bump();
            while matches!(self.peek(0), Some(b) if b.is_ascii_digit() || b == b'_') {
                self.bump();
            }
        }
        // Type suffix (`u64`, `f64`, …) — a trailing `f32`/`f64` suffix
        // marks a float.
        let suffix_start = self.pos;
        while self.ident_continue() {
            self.bump();
        }
        let suffix = &self.src[suffix_start..self.pos];
        if suffix.starts_with('f') {
            kind = TokKind::Float;
        }
        kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).tokens.iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_paths() {
        assert_eq!(
            kinds("std::collections::HashMap"),
            vec![
                (TokKind::Ident, "std"),
                (TokKind::Punct, "::"),
                (TokKind::Ident, "collections"),
                (TokKind::Punct, "::"),
                (TokKind::Ident, "HashMap"),
            ]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "HashMap::new()";"#);
        assert!(toks.iter().all(|(k, t)| *k != TokKind::Ident || *t != "HashMap"));
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Str));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let j = r#"{"HashMap": 1}"#; x"####;
        let toks = kinds(src);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Str && t.contains("HashMap")));
        assert_eq!(toks.last().map(|(k, t)| (*k, *t)), Some((TokKind::Ident, "x")));
    }

    #[test]
    fn lifetimes_are_not_chars_or_statics() {
        let toks = kinds("fn f(s: &'static str) -> &'a str { s }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && *t == "static"));
    }

    #[test]
    fn char_literals_lex_as_chars() {
        let toks = kinds(r"let c = 'x'; let n = '\n'; let q = '\'';");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 3);
    }

    #[test]
    fn numbers_ranges_and_floats() {
        let toks = kinds("0..n 1.5 0x9E37_79B9 2e-3 7u64 3.0f32 1.max(2)");
        let ints: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Int).collect();
        let floats: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Float).collect();
        assert_eq!(ints.len(), 5, "0, 0x…, 7u64, 1 and 2 from 1.max(2): {ints:?}");
        assert_eq!(floats.len(), 3, "1.5, 2e-3, 3.0f32: {floats:?}");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Punct && *t == "."));
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let out = lex("// alc-lint: allow(x, reason=\"y\")\nfn f() {} /* block\nstill */ g()");
        assert_eq!(out.comments.len(), 2);
        assert_eq!(out.comments[0].line, 1);
        assert!(out.comments[0].text.contains("alc-lint"));
        assert_eq!(out.comments[1].line, 2);
        assert!(!out.tokens.iter().any(|t| t.text == "block"));
    }

    #[test]
    fn nested_block_comments() {
        let out = lex("/* a /* b */ c */ real");
        assert_eq!(out.tokens.len(), 1);
        assert_eq!(out.tokens[0].text, "real");
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r##"b"bytes" b'x' br#"raw"# rest"##);
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Str));
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Char));
        assert_eq!(toks.last().map(|(_, t)| *t), Some("rest"));
    }

    #[test]
    fn raw_identifiers_stay_identifiers() {
        // `r#fn` is a raw identifier, not a raw string.
        let toks = kinds("r#type x");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && *t == "type"));
    }

    #[test]
    fn line_and_col_positions() {
        let out = lex("a\n  bb\n");
        assert_eq!(out.tokens[0].line, 1);
        assert_eq!(out.tokens[0].col, 1);
        assert_eq!(out.tokens[1].line, 2);
        assert_eq!(out.tokens[1].col, 3);
    }

    #[test]
    fn unterminated_string_does_not_panic() {
        let out = lex("let s = \"oops");
        assert!(out.tokens.iter().any(|t| t.kind == TokKind::Str));
    }
}
