//! The `alc-lint` binary.
//!
//! ```text
//! alc-lint --workspace [--root DIR] [--json PATH] [--quiet]
//! alc-lint [--root DIR] FILE.rs...
//! alc-lint --rules
//! ```
//!
//! Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/config error.

use std::path::PathBuf;
use std::process::ExitCode;

use alc_lint::{load_config, report, rules, run_files, run_workspace, RunResult};

fn usage() {
    println!("alc-lint — repo-specific static analysis (determinism, RNG, hot-path allocs, purity)");
    println!();
    println!("usage: alc-lint --workspace [--root DIR] [--json PATH] [--quiet]");
    println!("       alc-lint [--root DIR] [--json PATH] FILE.rs...");
    println!("       alc-lint --rules");
    println!();
    println!("  --workspace  lint every root listed in lint.toml");
    println!("  --root DIR   repo root holding lint.toml (default: .)");
    println!("  --json PATH  also write the machine-readable report to PATH");
    println!("  --quiet      print only the summary line, not each diagnostic");
    println!("  --rules      list every rule with family and description");
    println!();
    println!("  suppress with: // alc-lint: allow(rule, reason=\"why\")  (reason required)");
}

fn list_rules() {
    for r in rules::RULES {
        println!("{:<24} {:<12} {}", r.name, r.family, r.summary);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut quiet = false;
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    let mut files: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            "--rules" => {
                list_rules();
                return ExitCode::SUCCESS;
            }
            "--workspace" => workspace = true,
            "--quiet" => quiet = true,
            "--root" => match it.next() {
                Some(d) => root = PathBuf::from(d),
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--json" => match it.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json needs a path");
                    return ExitCode::from(2);
                }
            },
            other if other.starts_with('-') => {
                usage();
                eprintln!("\nerror: unknown flag {other}");
                return ExitCode::from(2);
            }
            other => files.push(other.to_string()),
        }
    }
    if !workspace && files.is_empty() {
        usage();
        eprintln!("\nerror: pass --workspace or at least one file");
        return ExitCode::from(2);
    }

    let run = || -> Result<RunResult, String> {
        let cfg = load_config(&root)?;
        if workspace {
            run_workspace(&root, &cfg)
        } else {
            run_files(&root, &cfg, &files)
        }
    };
    let result = match run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if !quiet {
        for f in &result.findings {
            if f.suppressed.is_some() {
                continue; // allowed findings appear in the JSON report only
            }
            let abs = root.join(&f.path);
            let text = std::fs::read_to_string(&abs).unwrap_or_default();
            let line = text
                .lines()
                .nth(f.line.saturating_sub(1) as usize)
                .unwrap_or("");
            print!("{}", report::render_text(f, line));
            println!();
        }
    }

    if let Some(path) = &json_out {
        let json = report::render_json(&result.findings, result.files_scanned);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let unsuppressed = result.unsuppressed().count();
    let suppressed = result.findings.len() - unsuppressed;
    println!(
        "alc-lint: {} file(s), {} finding(s) ({} allowed, {} unsuppressed)",
        result.files_scanned,
        result.findings.len(),
        suppressed,
        unsuppressed
    );
    if unsuppressed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
