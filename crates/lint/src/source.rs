//! Per-file analysis context: test regions and inline suppressions.
//!
//! * **Test regions** — line ranges covered by `#[cfg(test)]` or
//!   `#[test]` items (brace-matched from the token stream). Most rules
//!   skip them: a unit test seeding an RNG literal or unwrapping a
//!   fixture is policy-clean.
//! * **Suppressions** — `// alc-lint: allow(rule, reason="…")` comments.
//!   The reason is *mandatory*; a reasonless or malformed allow is itself
//!   reported (rule `suppression-hygiene`), as is one that never
//!   suppressed anything.

use crate::lexer::{lex, Comment, Lexed, TokKind, Token};

/// One parsed `allow(...)` directive.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule being allowed.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// Line the comment sits on.
    pub line: u32,
    /// The line whose findings it covers: its own when trailing code,
    /// otherwise the next line bearing tokens.
    pub target_line: u32,
}

/// A malformed suppression comment, reported as `suppression-hygiene`.
#[derive(Debug, Clone)]
pub struct SuppressionIssue {
    /// Line of the offending comment.
    pub line: u32,
    /// What was wrong.
    pub message: String,
}

/// Everything the rules need to know about one file.
pub struct SourceFile<'a> {
    /// Repo-relative path, `/`-separated.
    pub path: String,
    /// Raw source (for diagnostic snippets).
    pub text: &'a str,
    /// Token/comment streams.
    pub lexed: Lexed<'a>,
    /// Line ranges `(start, end)` inclusive that are test code.
    pub test_regions: Vec<(u32, u32)>,
    /// Parsed suppression directives.
    pub suppressions: Vec<Suppression>,
    /// Malformed suppression comments.
    pub suppression_issues: Vec<SuppressionIssue>,
}

impl<'a> SourceFile<'a> {
    /// Lexes and indexes `text`.
    pub fn new(path: String, text: &'a str) -> SourceFile<'a> {
        let lexed = lex(text);
        let test_regions = find_test_regions(&lexed.tokens);
        let (suppressions, suppression_issues) =
            parse_suppressions(&lexed.comments, &lexed.tokens);
        SourceFile {
            path,
            text,
            lexed,
            test_regions,
            suppressions,
            suppression_issues,
        }
    }

    /// Whether `line` lies inside a `#[cfg(test)]` / `#[test]` region.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| (s..=e).contains(&line))
    }

    /// The source text of `line` (1-based), for diagnostics.
    pub fn line_text(&self, line: u32) -> &'a str {
        self.text
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .unwrap_or("")
    }
}

/// Finds line ranges of items annotated `#[cfg(test)]` or `#[test]`
/// (also `#[cfg(all(test, …))]` — anything whose attribute tokens
/// contain the ident `test`). The region runs from the attribute to the
/// end of the item: the matching close of the first `{` block, or the
/// first `;` at attribute depth for block-less items.
fn find_test_regions(tokens: &[Token<'_>]) -> Vec<(u32, u32)> {
    let mut regions: Vec<(u32, u32)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // An outer attribute: `#` `[` … `]` (not `#!`).
        if !(tokens[i].text == "#" && tokens.get(i + 1).is_some_and(|t| t.text == "[")) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let start_line = tokens[i].line;
        // Find the matching `]`, remembering whether `test` appears.
        let mut depth = 0usize;
        let mut has_test = false;
        let mut j = i + 1;
        while j < tokens.len() {
            match tokens[j].text {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "test" if tokens[j].kind == TokKind::Ident => has_test = true,
                _ => {}
            }
            j += 1;
        }
        if !has_test || j >= tokens.len() {
            i = j.max(i + 1);
            continue;
        }
        // Walk past any further attributes to the item, then to its end.
        let mut k = j + 1;
        let mut brace_depth = 0usize;
        let mut end_line = tokens.get(j).map_or(start_line, |t| t.line);
        while k < tokens.len() {
            let t = &tokens[k];
            match t.text {
                "{" => brace_depth += 1,
                "}" => {
                    brace_depth = brace_depth.saturating_sub(1);
                    if brace_depth == 0 {
                        end_line = t.line;
                        break;
                    }
                }
                ";" if brace_depth == 0 => {
                    end_line = t.line;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        regions.push((start_line, end_line));
        i = attr_start + 1;
    }
    merge_regions(regions)
}

fn merge_regions(mut regions: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    regions.sort_unstable();
    let mut out: Vec<(u32, u32)> = Vec::with_capacity(regions.len());
    for (s, e) in regions {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Parses `alc-lint:` directives out of the comment stream.
fn parse_suppressions(
    comments: &[Comment<'_>],
    tokens: &[Token<'_>],
) -> (Vec<Suppression>, Vec<SuppressionIssue>) {
    let mut sups = Vec::new();
    let mut issues = Vec::new();
    for c in comments {
        // Only plain `//` comments carry directives. Doc comments
        // (`///`, `//!`) and block comments merely *describe* the
        // syntax — e.g. this crate's own module docs.
        let Some(body) = c.text.strip_prefix("//") else {
            continue;
        };
        if body.starts_with('/') || body.starts_with('!') {
            continue;
        }
        let Some(directive) = body.trim_start().strip_prefix("alc-lint:") else {
            continue;
        };
        let directive = directive.trim();
        match parse_allow(directive) {
            Ok((rule, reason)) => sups.push(Suppression {
                rule,
                reason,
                line: c.line,
                target_line: target_line(c, tokens),
            }),
            Err(msg) => issues.push(SuppressionIssue {
                line: c.line,
                message: msg,
            }),
        }
    }
    (sups, issues)
}

/// The line a suppression comment covers: its own line when code shares
/// it (trailing comment), otherwise the next token-bearing line.
fn target_line(c: &Comment<'_>, tokens: &[Token<'_>]) -> u32 {
    if tokens.iter().any(|t| t.line == c.line) {
        return c.line;
    }
    tokens
        .iter()
        .map(|t| t.line)
        .filter(|&l| l > c.line)
        .min()
        .unwrap_or(c.line)
}

/// Parses `allow(rule, reason="…")`. Both parts are mandatory.
fn parse_allow(s: &str) -> Result<(String, String), String> {
    let inner = s
        .strip_prefix("allow(")
        .and_then(|x| x.strip_suffix(')'))
        .ok_or_else(|| {
            "malformed directive: want `alc-lint: allow(rule, reason=\"…\")`".to_string()
        })?;
    let (rule, rest) = inner.split_once(',').ok_or_else(|| {
        "suppression is missing its reason: `allow(rule, reason=\"…\")`".to_string()
    })?;
    let rule = rule.trim();
    if rule.is_empty() || !rule.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-') {
        return Err(format!("`{rule}` is not a rule name"));
    }
    let reason = rest
        .trim()
        .strip_prefix("reason=")
        .map(str::trim)
        .and_then(|r| r.strip_prefix('"'))
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| "suppression reason must be `reason=\"…\"`".to_string())?;
    if reason.trim().is_empty() {
        return Err("suppression reason must not be empty".to_string());
    }
    Ok((rule.to_string(), reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_becomes_a_region() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = SourceFile::new("x.rs".into(), src);
        assert!(!f.in_test_region(1));
        assert!(f.in_test_region(2));
        assert!(f.in_test_region(4));
        assert!(f.in_test_region(5));
        assert!(!f.in_test_region(6));
    }

    #[test]
    fn test_fn_attribute_covers_only_the_fn() {
        let src = "#[test]\nfn t() {\n    body();\n}\nfn real() {}\n";
        let f = SourceFile::new("x.rs".into(), src);
        assert!(f.in_test_region(3));
        assert!(!f.in_test_region(5));
    }

    #[test]
    fn cfg_attr_without_test_is_not_a_region() {
        let src = "#[cfg(feature = \"x\")]\nfn real() {}\n";
        let f = SourceFile::new("x.rs".into(), src);
        assert!(!f.in_test_region(2));
    }

    #[test]
    fn blockless_cfg_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn real() {}\n";
        let f = SourceFile::new("x.rs".into(), src);
        assert!(f.in_test_region(2));
        assert!(!f.in_test_region(3));
    }

    #[test]
    fn trailing_suppression_targets_its_own_line() {
        let src = "use x::Y; // alc-lint: allow(hash-container, reason=\"lookup only\")\n";
        let f = SourceFile::new("x.rs".into(), src);
        assert_eq!(f.suppressions.len(), 1);
        assert_eq!(f.suppressions[0].target_line, 1);
        assert_eq!(f.suppressions[0].rule, "hash-container");
        assert_eq!(f.suppressions[0].reason, "lookup only");
    }

    #[test]
    fn standalone_suppression_targets_next_code_line() {
        let src = "// alc-lint: allow(wall-clock, reason=\"startup stamp\")\n\nlet t = now();\n";
        let f = SourceFile::new("x.rs".into(), src);
        assert_eq!(f.suppressions[0].target_line, 3);
    }

    #[test]
    fn reasonless_or_malformed_allows_are_issues() {
        for bad in [
            "// alc-lint: allow(hash-container)",
            "// alc-lint: allow(hash-container, reason=)",
            "// alc-lint: allow(hash-container, reason=\"\")",
            "// alc-lint: allowed(hash-container, reason=\"x\")",
            "// alc-lint: allow(bad rule!, reason=\"x\")",
        ] {
            let f = SourceFile::new("x.rs".into(), bad);
            assert_eq!(f.suppressions.len(), 0, "{bad}");
            assert_eq!(f.suppression_issues.len(), 1, "{bad}");
        }
    }

    #[test]
    fn doc_comments_describing_the_syntax_are_not_directives() {
        let src = "//! Suppress with `// alc-lint: allow(rule, reason=\"…\")`.\n\
                   /// See `alc-lint: allow(x)` — deliberately incomplete.\n\
                   /* alc-lint: allow(y) */\n\
                   fn real() {}\n";
        let f = SourceFile::new("x.rs".into(), src);
        assert!(f.suppressions.is_empty());
        assert!(f.suppression_issues.is_empty());
    }

    #[test]
    fn string_containing_directive_is_ignored() {
        let src = "let s = \"// alc-lint: allow(x, reason=\\\"y\\\")\";\n";
        let f = SourceFile::new("x.rs".into(), src);
        assert!(f.suppressions.is_empty());
        assert!(f.suppression_issues.is_empty());
    }
}
