//! Streaming Chrome/Perfetto trace-JSON writer.
//!
//! Emits the object form (`{"displayTimeUnit":"ms","traceEvents":[…]}`)
//! that Perfetto and `chrome://tracing` load directly. Events are
//! rendered one per line into a single reused `String` buffer, so the
//! steady-state emit path performs no allocation (the buffer reaches
//! its high-water mark within the first few events). Timestamps are
//! converted to the microseconds the format requires; all numbers use
//! Rust's shortest round-trip `Display`, which keeps byte output
//! deterministic across runs and platforms.

use std::fmt::Write as _;
use std::io::{self, Write};

use crate::{Args, Phase, TraceEvent, TraceSink};

/// A [`TraceSink`] that streams Chrome trace-JSON to any [`Write`].
///
/// IO errors are sticky: the first failure is stored and later emits
/// become no-ops, mirroring the runtime's JSONL gate-log sink, so the
/// hot path never has to thread `Result`s. [`ChromeWriter::finish`]
/// surfaces the stored error.
pub struct ChromeWriter<W: Write> {
    w: W,
    line: String,
    first: bool,
    error: Option<io::Error>,
}

impl<W: Write> ChromeWriter<W> {
    /// Wraps `w` and writes the trace prologue.
    pub fn new(mut w: W) -> io::Result<Self> {
        w.write_all(b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")?;
        Ok(ChromeWriter {
            w,
            line: String::with_capacity(256),
            first: true,
            error: None,
        })
    }

    /// Writes the trace epilogue, flushes, and returns the writer (or
    /// the first error encountered while streaming).
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.w.write_all(b"\n]}\n")?;
        self.w.flush()?;
        Ok(self.w)
    }

    fn render(line: &mut String, ev: &TraceEvent) {
        line.clear();
        line.push_str("{\"ph\":\"");
        line.push(ev.ph.code());
        line.push_str("\",\"name\":\"");
        push_json_str(line, ev.name);
        line.push_str("\",\"cat\":\"");
        push_json_str(line, ev.cat);
        line.push('"');
        if matches!(ev.ph, Phase::FlowStart | Phase::FlowEnd) {
            // `write!` into a String is infallible.
            let _ = write!(line, ",\"id\":{}", ev.id);
        }
        let _ = write!(line, ",\"ts\":{}", ev.ts_ms * 1000.0);
        if ev.ph == Phase::Complete {
            let _ = write!(line, ",\"dur\":{}", ev.dur_ms * 1000.0);
        }
        let _ = write!(line, ",\"pid\":{},\"tid\":{}", ev.pid, ev.tid);
        if ev.ph == Phase::Mark {
            line.push_str(",\"s\":\"t\"");
        }
        if ev.ph == Phase::FlowEnd {
            // Bind the flow finish to the enclosing slice's start.
            line.push_str(",\"bp\":\"e\"");
        }
        match ev.args {
            Args::None => {}
            Args::Bound(b) => {
                let _ = write!(line, ",\"args\":{{\"bound\":{b}}}");
            }
            Args::Value(v) => {
                let _ = write!(line, ",\"args\":{{\"value\":{v}}}");
            }
            Args::Outcome(o) => {
                line.push_str(",\"args\":{\"outcome\":\"");
                push_json_str(line, o);
                line.push_str("\"}");
            }
            Args::Switch { from, to } => {
                line.push_str(",\"args\":{\"from\":\"");
                push_json_str(line, from);
                line.push_str("\",\"to\":\"");
                push_json_str(line, to);
                line.push_str("\"}");
            }
            Args::Delta(d) => {
                let _ = write!(line, ",\"args\":{{\"delta\":{d}}}");
            }
            Args::Name { prefix, index } => {
                line.push_str(",\"args\":{\"name\":\"");
                push_json_str(line, prefix);
                if let Some(i) = index {
                    let _ = write!(line, "{i}");
                }
                line.push_str("\"}");
            }
        }
        line.push('}');
    }
}

impl<W: Write + Send> TraceSink for ChromeWriter<W> {
    fn emit(&mut self, ev: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        Self::render(&mut self.line, ev);
        let sep: &[u8] = if self.first { b"" } else { b",\n" };
        self.first = false;
        if let Err(e) = self
            .w
            .write_all(sep)
            .and_then(|()| self.w.write_all(self.line.as_bytes()))
        {
            self.error = Some(e);
        }
    }
}

/// Appends `s` to `line` with JSON string escaping.
fn push_json_str(line: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => line.push_str("\\\""),
            '\\' => line.push_str("\\\\"),
            '\n' => line.push_str("\\n"),
            '\r' => line.push_str("\\r"),
            '\t' => line.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(line, "\\u{:04x}", c as u32);
            }
            c => line.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cat, name, PID_NODE};

    fn written(events: &[TraceEvent]) -> String {
        let mut w = ChromeWriter::new(Vec::new()).expect("prologue");
        for ev in events {
            w.emit(ev);
        }
        String::from_utf8(w.finish().expect("finish")).expect("utf8")
    }

    #[test]
    fn renders_the_object_form_with_microsecond_timestamps() {
        let out = written(&[
            TraceEvent::begin(name::ATTEMPT, cat::TXN, 1.5, PID_NODE, 3),
            TraceEvent::end(name::ATTEMPT, cat::TXN, 2.0, PID_NODE, 3)
                .with(Args::Outcome("commit")),
        ]);
        assert!(out.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
        assert!(out.ends_with("\n]}\n"));
        assert!(out.contains(
            "{\"ph\":\"B\",\"name\":\"attempt\",\"cat\":\"txn\",\"ts\":1500,\"pid\":1,\"tid\":3}"
        ));
        assert!(out.contains("\"args\":{\"outcome\":\"commit\"}"));
    }

    #[test]
    fn complete_counter_instant_flow_and_meta_forms() {
        let out = written(&[
            TraceEvent::complete(name::CPU, cat::SVC, 10.0, 2.5, PID_NODE, 4),
            TraceEvent::counter(name::BOUND, 100.0, PID_NODE, 7.0),
            TraceEvent::instant(name::FAULT, cat::FAULT, 50.0, PID_NODE, 0)
                .with(Args::Delta(-2)),
            TraceEvent::flow_start(name::RETRY, cat::CLIENT, 9, 60.0, 2, 1),
            TraceEvent::flow_end(name::RETRY, cat::CLIENT, 9, 70.0, 2, 1),
            TraceEvent::thread_name(PID_NODE, 4, "txn-slot-", Some(3)),
        ]);
        assert!(out.contains("\"ph\":\"X\",\"name\":\"cpu\",\"cat\":\"svc\",\"ts\":10000,\"dur\":2500"));
        assert!(out.contains("\"ph\":\"C\",\"name\":\"bound\""));
        assert!(out.contains("\"args\":{\"value\":7}"));
        assert!(out.contains("\"s\":\"t\",\"args\":{\"delta\":-2}"));
        assert!(out.contains("\"ph\":\"s\",\"name\":\"retry\",\"cat\":\"client\",\"id\":9"));
        assert!(out.contains("\"ph\":\"f\",\"name\":\"retry\",\"cat\":\"client\",\"id\":9"));
        assert!(out.contains("\"bp\":\"e\""));
        assert!(out.contains("\"args\":{\"name\":\"txn-slot-3\"}"));
    }

    #[test]
    fn escapes_json_metacharacters() {
        let mut line = String::new();
        push_json_str(&mut line, "a\"b\\c\nd\u{1}");
        assert_eq!(line, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn emit_reuses_one_line_buffer() {
        let mut w = ChromeWriter::new(Vec::new()).expect("prologue");
        w.emit(&TraceEvent::begin(name::RUN, cat::TXN, 1.0, PID_NODE, 1));
        let cap = w.line.capacity();
        for i in 0..10_000 {
            w.emit(&TraceEvent::begin(name::RUN, cat::TXN, f64::from(i), PID_NODE, 1));
            w.emit(&TraceEvent::end(name::RUN, cat::TXN, f64::from(i), PID_NODE, 1)
                .with(Args::Outcome("abort")));
        }
        assert_eq!(w.line.capacity(), cap, "line buffer must not regrow");
        w.finish().expect("finish");
    }

    #[test]
    fn io_errors_are_sticky_and_surface_in_finish() {
        struct Failing;
        impl std::io::Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        struct FailAfterProlog {
            calls: usize,
        }
        impl std::io::Write for FailAfterProlog {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.calls += 1;
                if self.calls > 1 {
                    Err(io::Error::other("disk full"))
                } else {
                    Ok(buf.len())
                }
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        assert!(ChromeWriter::new(Failing).is_err());
        let mut w = ChromeWriter::new(FailAfterProlog { calls: 0 }).expect("prologue");
        w.emit(&TraceEvent::instant(name::FAULT, cat::FAULT, 1.0, PID_NODE, 0));
        w.emit(&TraceEvent::instant(name::FAULT, cat::FAULT, 2.0, PID_NODE, 0));
        assert!(w.finish().is_err());
    }
}
