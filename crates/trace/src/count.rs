//! Counting null sink: tallies events instead of writing them.
//!
//! Used three ways: as the cheap "tracing enabled but discarded"
//! backend, as the reconciliation half of a [`Tee`](crate::Tee) next to
//! a [`ChromeWriter`](crate::ChromeWriter) (the `scenario trace`
//! command checks span/instant counts against the run's report
//! counters), and as the balance checker behind the span-conservation
//! tests. Steady-state emission only increments existing tallies; the
//! maps grow once per distinct key (the vocabulary × lanes is small and
//! bounded), so after warm-up the emit path is allocation-free.

use std::collections::BTreeMap;

use crate::{Args, Phase, TraceEvent, TraceSink};

/// An event tally: every occurrence, and those at or past the floor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    /// All events seen.
    pub total: u64,
    /// Events strictly past the configured floor (the whole run when no
    /// floor is set). The comparison is strict because the engine
    /// processes events at exactly the warmup instant *before* the
    /// window reset; report counters are post-warmup, so the strict
    /// floor is what makes trace-vs-report reconciliation exact.
    pub after_floor: u64,
}

/// A [`TraceSink`] that counts events by phase, name and outcome, and
/// tracks span begin/end balance per `(pid, tid, name)` lane.
#[derive(Debug)]
pub struct CountingSink {
    floor_ms: f64,
    counts: BTreeMap<(Phase, &'static str, &'static str), Tally>,
    spans: BTreeMap<(u32, u32, &'static str), (u64, u64)>,
    total: u64,
}

impl Default for CountingSink {
    fn default() -> Self {
        Self::new()
    }
}

impl CountingSink {
    /// A sink counting everything (`after_floor == total`).
    pub fn new() -> Self {
        CountingSink {
            floor_ms: f64::NEG_INFINITY,
            counts: BTreeMap::new(),
            spans: BTreeMap::new(),
            total: 0,
        }
    }

    /// A sink whose `after_floor` tallies only count events with
    /// `ts_ms > floor_ms` — set this to the warmup horizon to compare
    /// against post-warmup report counters (events at exactly the
    /// warmup instant run before the window reset, so they belong to
    /// the warmup side).
    pub fn with_floor(floor_ms: f64) -> Self {
        CountingSink {
            floor_ms,
            ..Self::new()
        }
    }

    /// Total events seen, all kinds.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The tally for `(ph, name)`, summed over outcomes.
    pub fn count(&self, ph: Phase, name: &'static str) -> Tally {
        let mut out = Tally::default();
        for ((p, n, _), t) in &self.counts {
            if *p == ph && *n == name {
                out.total += t.total;
                out.after_floor += t.after_floor;
            }
        }
        out
    }

    /// The tally for span-end events of `name` carrying `outcome`.
    pub fn outcome(&self, name: &'static str, outcome: &'static str) -> Tally {
        self.counts
            .get(&(Phase::End, name, outcome))
            .copied()
            .unwrap_or_default()
    }

    /// The first `(pid, tid, name)` lane whose begin and end counts
    /// disagree, with those counts — `None` means every span that was
    /// opened was also closed.
    pub fn first_unbalanced(&self) -> Option<(u32, u32, &'static str, u64, u64)> {
        self.spans
            .iter()
            .find(|(_, (b, e))| b != e)
            .map(|((pid, tid, name), (b, e))| (*pid, *tid, *name, *b, *e))
    }

    /// Total span-begin events across all lanes.
    pub fn span_begins(&self) -> u64 {
        self.spans.values().map(|(b, _)| b).sum()
    }

    /// Total span-end events across all lanes.
    pub fn span_ends(&self) -> u64 {
        self.spans.values().map(|(_, e)| e).sum()
    }
}

impl TraceSink for CountingSink {
    fn emit(&mut self, ev: &TraceEvent) {
        self.total += 1;
        let outcome = match ev.args {
            Args::Outcome(o) => o,
            _ => "",
        };
        let tally = self.counts.entry((ev.ph, ev.name, outcome)).or_default();
        tally.total += 1;
        if ev.ts_ms > self.floor_ms {
            tally.after_floor += 1;
        }
        match ev.ph {
            Phase::Begin => {
                self.spans.entry((ev.pid, ev.tid, ev.name)).or_default().0 += 1;
            }
            Phase::End => {
                self.spans.entry((ev.pid, ev.tid, ev.name)).or_default().1 += 1;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cat, name, PID_NODE};

    #[test]
    fn floor_splits_tallies() {
        let mut s = CountingSink::with_floor(100.0);
        s.emit(&TraceEvent::instant(name::CLIENT_SHED, cat::CLIENT, 50.0, 2, 1));
        s.emit(&TraceEvent::instant(name::CLIENT_SHED, cat::CLIENT, 100.0, 2, 1));
        s.emit(&TraceEvent::instant(name::CLIENT_SHED, cat::CLIENT, 150.0, 2, 1));
        let t = s.count(Phase::Mark, name::CLIENT_SHED);
        // Strictly past the floor: the event at exactly 100 ms is warmup.
        assert_eq!((t.total, t.after_floor), (3, 1));
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn balance_tracks_per_lane() {
        let mut s = CountingSink::new();
        s.emit(&TraceEvent::begin(name::RUN, cat::TXN, 1.0, PID_NODE, 1));
        s.emit(&TraceEvent::begin(name::RUN, cat::TXN, 1.0, PID_NODE, 2));
        s.emit(&TraceEvent::end(name::RUN, cat::TXN, 2.0, PID_NODE, 1));
        assert_eq!(s.first_unbalanced(), Some((PID_NODE, 2, name::RUN, 1, 0)));
        s.emit(&TraceEvent::end(name::RUN, cat::TXN, 2.0, PID_NODE, 2));
        assert_eq!(s.first_unbalanced(), None);
        assert_eq!(s.span_begins(), 2);
        assert_eq!(s.span_ends(), 2);
    }

    #[test]
    fn outcomes_are_tallied_separately() {
        let mut s = CountingSink::new();
        for outcome in ["commit", "commit", "timeout"] {
            s.emit(
                &TraceEvent::end(name::ATTEMPT, cat::TXN, 5.0, PID_NODE, 1)
                    .with(Args::Outcome(outcome)),
            );
        }
        assert_eq!(s.outcome(name::ATTEMPT, "commit").total, 2);
        assert_eq!(s.outcome(name::ATTEMPT, "timeout").total, 1);
        assert_eq!(s.outcome(name::ATTEMPT, "displaced").total, 0);
        assert_eq!(s.count(Phase::End, name::ATTEMPT).total, 3);
    }
}
