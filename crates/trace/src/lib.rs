//! Span/event tracing for the load-control stack.
//!
//! `alc-trace` is the observability backbone shared by the simulator
//! (`alc-tpsim`) and the embeddable runtime (`alc-runtime`): both emit
//! the same event vocabulary through the [`TraceSink`] trait, so a
//! simulated scenario and a production embedding produce the same trace
//! format and are diagnosed with the same tools.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Events carry no wall-clock readings — the engine
//!    stamps simulated milliseconds, the runtime stamps its explicit
//!    `now_ms` epoch offsets — and every id (flow chains) comes from a
//!    caller-owned counter. Two identical runs emit byte-identical
//!    traces.
//! 2. **Allocation discipline.** A [`TraceEvent`] is a plain value of
//!    `Copy` fields (`&'static str` names, numeric payloads in the
//!    [`Args`] enum); constructing and emitting one allocates nothing.
//!    The [`ChromeWriter`] renders into one reused line buffer, and the
//!    [`CountingSink`] mutates existing tallies in steady state.
//! 3. **No dependencies.** The Chrome/Perfetto trace-JSON subset we
//!    emit is written by hand; nothing outside `std` is required.
//!
//! The output format is the Chrome trace-event JSON object form
//! (`{"displayTimeUnit":"ms","traceEvents":[…]}`), loadable directly in
//! Perfetto or `chrome://tracing`. Spans are `B`/`E` pairs, service
//! bursts are `X` completes, markers are `i` instants, rolling gauges
//! are `C` counters, and retry chains are linked with `s`/`f` flow
//! events sharing a deterministic id.

#![warn(missing_docs)]

mod chrome;
mod count;

pub use chrome::ChromeWriter;
pub use count::{CountingSink, Tally};

/// Process id for the simulated (or embedded) processing node.
pub const PID_NODE: u32 = 1;
/// Process id for the client population (closed-loop client events).
pub const PID_CLIENTS: u32 = 2;
/// Thread id for the control plane (gate decisions, CC switches,
/// faults, counters) within [`PID_NODE`].
pub const TID_CONTROL: u32 = 0;

/// The shared event vocabulary. Emitters use these constants so the
/// reconciliation tooling (and the README table) can rely on exact
/// names.
pub mod name {
    /// Span: queued at the gate, waiting for admission.
    pub const WAIT: &str = "wait";
    /// Span: admitted into the system until commit/timeout/displace.
    pub const ATTEMPT: &str = "attempt";
    /// Span: one execution run (begin-run to commit or abort).
    pub const RUN: &str = "run";
    /// Span: blocked on a lock conflict.
    pub const BLOCKED: &str = "blocked";
    /// Span: waiting out a restart delay after an abort.
    pub const RESTART_WAIT: &str = "restart-wait";
    /// Complete: one CPU service burst.
    pub const CPU: &str = "cpu";
    /// Complete: one disk service burst.
    pub const DISK: &str = "disk";
    /// Instant: the control law published a new MPL bound.
    pub const GATE_DECISION: &str = "gate.decision";
    /// Instant: the meta-controller decided to switch CC protocols.
    pub const CC_DECIDE: &str = "cc.switch.decide";
    /// Instant: a drained CC switch completed.
    pub const CC_COMPLETE: &str = "cc.switch.complete";
    /// Instant: a capacity fault (or repair) changed the CPU station.
    pub const FAULT: &str = "fault";
    /// Instant: a client's patience expired and its attempt was canceled.
    pub const CLIENT_TIMEOUT: &str = "client.timeout";
    /// Instant: a retry was refused admission at the gate (shed).
    pub const CLIENT_SHED: &str = "client.shed";
    /// Instant: a client gave up after exhausting its retry policy.
    pub const CLIENT_ABANDON: &str = "client.abandon";
    /// Instant: a hedged duplicate attempt was launched.
    pub const CLIENT_HEDGE: &str = "client.hedge";
    /// Flow: links a failed attempt to the retry it caused.
    pub const RETRY: &str = "retry";
    /// Counter: the observed multiprogramming level (in-system count).
    pub const MPL: &str = "mpl";
    /// Counter: the admission gate's MPL bound.
    pub const BOUND: &str = "bound";
}

/// Event categories (`cat` field), used by trace viewers for filtering.
pub mod cat {
    /// Transaction lifecycle spans.
    pub const TXN: &str = "txn";
    /// Service bursts at the physical stations.
    pub const SVC: &str = "svc";
    /// Admission-gate control events.
    pub const GATE: &str = "gate";
    /// Concurrency-control switching events.
    pub const CC: &str = "cc";
    /// Capacity faults and repairs.
    pub const FAULT: &str = "fault";
    /// Closed-loop client population events.
    pub const CLIENT: &str = "client";
}

/// Chrome trace-event phase. Rendered as the `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// `B` — span begin.
    Begin,
    /// `E` — span end.
    End,
    /// `X` — complete event with a duration.
    Complete,
    /// `i` — instant marker. (Named to stay clear of the wall-clock
    /// type the determinism lint polices.)
    Mark,
    /// `C` — counter sample.
    Counter,
    /// `s` — flow start.
    FlowStart,
    /// `f` — flow finish.
    FlowEnd,
    /// `M` — metadata (process/thread names).
    Meta,
}

impl Phase {
    /// The single-character `ph` value Chrome expects.
    pub fn code(self) -> char {
        match self {
            Phase::Begin => 'B',
            Phase::End => 'E',
            Phase::Complete => 'X',
            Phase::Mark => 'i',
            Phase::Counter => 'C',
            Phase::FlowStart => 's',
            Phase::FlowEnd => 'f',
            Phase::Meta => 'M',
        }
    }
}

/// Structured event payload, rendered into the `args` object without
/// allocating. `None` omits the field entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Args {
    /// No payload.
    None,
    /// `{"bound": n}` — an MPL bound.
    Bound(u32),
    /// `{"value": x}` — a counter sample.
    Value(f64),
    /// `{"outcome": "..."}` — how a span ended.
    Outcome(&'static str),
    /// `{"from": "...", "to": "..."}` — a CC protocol switch.
    Switch {
        /// Protocol being switched away from.
        from: &'static str,
        /// Protocol being switched to.
        to: &'static str,
    },
    /// `{"delta": n}` — a signed capacity change (fault or repair).
    Delta(i32),
    /// `{"name": "<prefix><index>"}` — metadata naming payload.
    Name {
        /// Static name prefix (e.g. `"txn-slot-"`).
        prefix: &'static str,
        /// Optional numeric suffix appended to the prefix.
        index: Option<u32>,
    },
}

/// One trace event. Plain `Copy` data: building one allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Event phase (`ph`).
    pub ph: Phase,
    /// Event name.
    pub name: &'static str,
    /// Category for viewer-side filtering.
    pub cat: &'static str,
    /// Timestamp in milliseconds (sim time or runtime epoch offset).
    pub ts_ms: f64,
    /// Duration in milliseconds (only meaningful for [`Phase::Complete`]).
    pub dur_ms: f64,
    /// Process lane (`pid`): [`PID_NODE`] or [`PID_CLIENTS`].
    pub pid: u32,
    /// Thread lane (`tid`): [`TID_CONTROL`], a txn slot, or a client id.
    pub tid: u32,
    /// Flow-chain id (only meaningful for flow phases). Deterministic:
    /// allocated from a caller-owned counter, never from a clock.
    pub id: u64,
    /// Structured payload.
    pub args: Args,
}

impl TraceEvent {
    fn base(ph: Phase, name: &'static str, cat: &'static str, ts_ms: f64) -> Self {
        TraceEvent {
            ph,
            name,
            cat,
            ts_ms,
            dur_ms: 0.0,
            pid: PID_NODE,
            tid: TID_CONTROL,
            id: 0,
            args: Args::None,
        }
    }

    /// A span-begin (`B`) event.
    pub fn begin(name: &'static str, cat: &'static str, ts_ms: f64, pid: u32, tid: u32) -> Self {
        let mut ev = Self::base(Phase::Begin, name, cat, ts_ms);
        ev.pid = pid;
        ev.tid = tid;
        ev
    }

    /// A span-end (`E`) event.
    pub fn end(name: &'static str, cat: &'static str, ts_ms: f64, pid: u32, tid: u32) -> Self {
        let mut ev = Self::base(Phase::End, name, cat, ts_ms);
        ev.pid = pid;
        ev.tid = tid;
        ev
    }

    /// A complete (`X`) event covering `[ts_ms, ts_ms + dur_ms)`.
    pub fn complete(
        name: &'static str,
        cat: &'static str,
        ts_ms: f64,
        dur_ms: f64,
        pid: u32,
        tid: u32,
    ) -> Self {
        let mut ev = Self::base(Phase::Complete, name, cat, ts_ms);
        ev.dur_ms = dur_ms;
        ev.pid = pid;
        ev.tid = tid;
        ev
    }

    /// An instant (`i`) marker.
    pub fn instant(name: &'static str, cat: &'static str, ts_ms: f64, pid: u32, tid: u32) -> Self {
        let mut ev = Self::base(Phase::Mark, name, cat, ts_ms);
        ev.pid = pid;
        ev.tid = tid;
        ev
    }

    /// A counter (`C`) sample on the control-plane lane.
    pub fn counter(name: &'static str, ts_ms: f64, pid: u32, value: f64) -> Self {
        let mut ev = Self::base(Phase::Counter, name, cat::GATE, ts_ms);
        ev.pid = pid;
        ev.args = Args::Value(value);
        ev
    }

    /// A flow-start (`s`) event anchoring chain `id` here.
    pub fn flow_start(
        name: &'static str,
        cat: &'static str,
        id: u64,
        ts_ms: f64,
        pid: u32,
        tid: u32,
    ) -> Self {
        let mut ev = Self::base(Phase::FlowStart, name, cat, ts_ms);
        ev.id = id;
        ev.pid = pid;
        ev.tid = tid;
        ev
    }

    /// A flow-finish (`f`) event closing chain `id` here.
    pub fn flow_end(
        name: &'static str,
        cat: &'static str,
        id: u64,
        ts_ms: f64,
        pid: u32,
        tid: u32,
    ) -> Self {
        let mut ev = Self::base(Phase::FlowEnd, name, cat, ts_ms);
        ev.id = id;
        ev.pid = pid;
        ev.tid = tid;
        ev
    }

    /// Metadata naming a process lane.
    pub fn process_name(pid: u32, prefix: &'static str, index: Option<u32>) -> Self {
        let mut ev = Self::base(Phase::Meta, "process_name", "__metadata", 0.0);
        ev.pid = pid;
        ev.args = Args::Name { prefix, index };
        ev
    }

    /// Metadata naming a thread lane.
    pub fn thread_name(pid: u32, tid: u32, prefix: &'static str, index: Option<u32>) -> Self {
        let mut ev = Self::base(Phase::Meta, "thread_name", "__metadata", 0.0);
        ev.pid = pid;
        ev.tid = tid;
        ev.args = Args::Name { prefix, index };
        ev
    }

    /// Attaches a structured payload.
    pub fn with(mut self, args: Args) -> Self {
        self.args = args;
        self
    }
}

/// Receives trace events. Implementations must tolerate high event
/// rates: the engine calls `emit` from its hot path, so steady-state
/// emission must not allocate.
pub trait TraceSink: Send {
    /// Records one event.
    fn emit(&mut self, ev: &TraceEvent);
}

/// Fans one event stream out to two sinks (e.g. a [`ChromeWriter`] for
/// the file and a [`CountingSink`] for reconciliation).
pub struct Tee<A: TraceSink, B: TraceSink>(pub A, pub B);

impl<A: TraceSink, B: TraceSink> TraceSink for Tee<A, B> {
    fn emit(&mut self, ev: &TraceEvent) {
        self.0.emit(ev);
        self.1.emit(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_plain_copy_values() {
        let ev = TraceEvent::begin(name::ATTEMPT, cat::TXN, 12.5, PID_NODE, 3)
            .with(Args::Outcome("commit"));
        let copy = ev;
        assert_eq!(copy, ev);
        assert_eq!(copy.ph.code(), 'B');
        assert_eq!(copy.args, Args::Outcome("commit"));
    }

    #[test]
    fn phase_codes_match_chrome() {
        let codes: Vec<char> = [
            Phase::Begin,
            Phase::End,
            Phase::Complete,
            Phase::Mark,
            Phase::Counter,
            Phase::FlowStart,
            Phase::FlowEnd,
            Phase::Meta,
        ]
        .iter()
        .map(|p| p.code())
        .collect();
        assert_eq!(codes, vec!['B', 'E', 'X', 'i', 'C', 's', 'f', 'M']);
    }

    #[test]
    fn tee_duplicates_events() {
        let mut tee = Tee(CountingSink::new(), CountingSink::new());
        tee.emit(&TraceEvent::instant(name::FAULT, cat::FAULT, 1.0, PID_NODE, 0));
        assert_eq!(tee.0.count(Phase::Mark, name::FAULT).total, 1);
        assert_eq!(tee.1.count(Phase::Mark, name::FAULT).total, 1);
    }
}
