//! Facade crate for the adaptive load control reproduction.
//!
//! Re-exports the workspace crates under one roof so examples, integration
//! tests and downstream users can depend on a single package:
//!
//! * [`core`] (`alc-core`) — the paper's contribution: the Incremental
//!   Steps and Parabola Approximation MPL controllers, the IS→PA hybrid,
//!   the §5 self-tuning outer loops, the RLS estimator, baseline policies
//!   and a thread-safe adaptive admission gate.
//! * [`tpsim`] (`alc-tpsim`) — the transaction processing simulator
//!   (closed terminals or open arrivals) with six CC protocols: OCC
//!   certification, 2PL with deadlock detection, wound-wait, wait-die,
//!   basic and multiversion timestamp ordering.
//! * [`des`] (`alc-des`) — the discrete-event simulation kernel and the
//!   §5 measurement-interval theory.
//! * [`analytic`] (`alc-analytic`) — companion analytic models (M/M/m,
//!   MVA, Tay locking model, OCC conflict model, Franaszek–Robinson
//!   random graphs, synthetic performance surfaces).
//! * [`scenario`] (`alc-scenario`) — the declarative scenario DSL:
//!   nonstationary experiments (jumps, ramps, bursts, trace replay) as
//!   JSON specs compiled into engine run plans and executed by the
//!   `scenario` binary.
//! * [`runtime`] (`alc-runtime`) — the embeddable admission-control
//!   runtime: a thread-safe gate driven by control laws (the paper's
//!   controllers unchanged, AIMD, retry-budget), JSONL gate logs, and
//!   the replay driver that pins runtime decisions byte-identical to
//!   the simulator's.
//! * [`trace`] (`alc-trace`) — span/event tracing shared by the
//!   simulator and the runtime: deterministic lifecycle spans and
//!   decision markers streamed as Chrome/Perfetto trace JSON.

pub use alc_analytic as analytic;
pub use alc_core as core;
pub use alc_des as des;
pub use alc_runtime as runtime;
pub use alc_scenario as scenario;
pub use alc_tpsim as tpsim;
pub use alc_trace as trace;
