//! End-to-end integration tests: the full stack (simulator + measurement
//! and controller + gate) must reproduce the paper's qualitative claims
//! on a CI-scale configuration.

use adaptive_load_control::core::controller::{
    IncrementalSteps, IsParams, LoadController, PaParams, ParabolaApproximation,
};
use adaptive_load_control::tpsim::config::{CcKind, ControlConfig, SystemConfig};
use adaptive_load_control::tpsim::experiment::{run_trajectory, sweep_bounds};
use adaptive_load_control::tpsim::{Simulator, WorkloadConfig};

fn ci_system(seed: u64) -> SystemConfig {
    SystemConfig {
        terminals: 120,
        cpus: 8,
        db_size: 400,
        think: alc_des::dist::Dist::exponential(400.0),
        disk_access: alc_des::dist::Dist::constant(2.0),
        disk_init_commit: alc_des::dist::Dist::constant(60.0),
        seed,
        ..SystemConfig::default()
    }
}

fn ci_control() -> ControlConfig {
    ControlConfig {
        sample_interval_ms: 1000.0,
        warmup_ms: 5_000.0,
        ..ControlConfig::default()
    }
}

/// The uncontrolled system thrashes; a well-placed bound prevents it.
#[test]
fn thrashing_exists_and_admission_control_prevents_it() {
    let sys = ci_system(101);
    let workload = WorkloadConfig::default();
    let pts = sweep_bounds(
        &sys,
        &workload,
        CcKind::Certification,
        &[5, 10, 20, 30, 45, 60, 90, 120],
        &ci_control(),
        60_000.0,
    );
    let peak = pts
        .iter()
        .max_by(|a, b| {
            a.stats
                .throughput_per_sec
                .total_cmp(&b.stats.throughput_per_sec)
        })
        .unwrap();
    let unlimited = pts.last().unwrap();
    assert!(
        unlimited.stats.throughput_per_sec < 0.85 * peak.stats.throughput_per_sec,
        "no thrashing: peak {} at {}, unlimited {}",
        peak.stats.throughput_per_sec,
        peak.x,
        unlimited.stats.throughput_per_sec
    );
    // The peak is interior: neither the smallest nor the largest bound.
    assert!(peak.x > 5 && peak.x < 120, "peak at boundary: {}", peak.x);
}

/// Both controllers steer the bound to the throughput-optimal region and
/// beat the uncontrolled system.
#[test]
fn controllers_prevent_thrashing_end_to_end() {
    let sys = ci_system(102);
    let workload = WorkloadConfig::default();
    let uncontrolled = alc_tpsim::experiment::stationary_run(
        &sys,
        &workload,
        CcKind::Certification,
        u32::MAX,
        &ci_control(),
        90_000.0,
    );
    for ctrl in [
        Box::new(IncrementalSteps::new(IsParams {
            initial_bound: 10,
            max_bound: 120,
            ..IsParams::default()
        })) as Box<dyn LoadController>,
        Box::new(ParabolaApproximation::new(PaParams {
            initial_bound: 10,
            max_bound: 120,
            dither_amplitude: 3.0,
            ..PaParams::default()
        })),
    ] {
        let name = ctrl.name();
        let (stats, _) = run_trajectory(
            &sys,
            &workload,
            CcKind::Certification,
            &ci_control(),
            ctrl,
            90_000.0,
            false,
        );
        assert!(
            stats.throughput_per_sec > 1.1 * uncontrolled.throughput_per_sec,
            "{name}: controlled {} not better than uncontrolled {}",
            stats.throughput_per_sec,
            uncontrolled.throughput_per_sec
        );
    }
}

/// Same seed ⇒ bit-identical trajectories across the whole stack.
#[test]
fn full_stack_determinism() {
    let build = || {
        Box::new(ParabolaApproximation::new(PaParams {
            initial_bound: 10,
            max_bound: 120,
            ..PaParams::default()
        }))
    };
    let run = || {
        run_trajectory(
            &ci_system(103),
            &WorkloadConfig::k_jump(4.0, 10.0, 20_000.0),
            CcKind::Certification,
            &ci_control(),
            build(),
            40_000.0,
            false,
        )
    };
    let (stats_a, traj_a) = run();
    let (stats_b, traj_b) = run();
    assert_eq!(stats_a, stats_b);
    assert_eq!(traj_a.bound.points(), traj_b.bound.points());
    assert_eq!(traj_a.throughput.points(), traj_b.throughput.points());
}

/// The simulator agrees with the analytic model (MVA × self-limiting
/// certification) within 15% over the whole bound range.
#[test]
fn simulator_matches_analytic_model() {
    let sys = ci_system(104);
    let workload = WorkloadConfig::default();
    let grid = [5u32, 15, 30, 60, 100];
    let pts = sweep_bounds(
        &sys,
        &workload,
        CcKind::Certification,
        &grid,
        &ci_control(),
        90_000.0,
    );
    let curve = workload.occ_model_at(0.0, &sys).curve(120);
    for p in &pts {
        let model = curve.throughput(f64::from(p.x)) * 1000.0;
        let rel = (p.stats.throughput_per_sec - model).abs() / model;
        assert!(
            rel < 0.15,
            "bound {}: sim {} vs model {} (rel {:.3})",
            p.x,
            p.stats.throughput_per_sec,
            model,
            rel
        );
    }
}

/// A k-jump moves the measured optimum, and the PA controller follows it
/// downward (the Figure 14 behaviour, CI scale).
#[test]
fn pa_tracks_jump_downward() {
    let sys = ci_system(105);
    let horizon = 240_000.0;
    let workload = WorkloadConfig::k_jump(6.0, 14.0, horizon / 2.0);
    let ctl = ControlConfig {
        warmup_ms: 0.0,
        ..ci_control()
    };
    let pa = Box::new(ParabolaApproximation::new(PaParams {
        initial_bound: 10,
        max_bound: 150,
        dither_amplitude: 3.0,
        alpha: 0.9,
        ..PaParams::default()
    }));
    let (_, traj) = run_trajectory(
        &sys,
        &workload,
        CcKind::Certification,
        &ctl,
        pa,
        horizon,
        true,
    );
    let pts = traj.bound.points();
    let pre: Vec<f64> = pts[pts.len() / 4..pts.len() / 2]
        .iter()
        .map(|&(_, b)| b)
        .collect();
    let post: Vec<f64> = pts[pts.len() * 7 / 8..].iter().map(|&(_, b)| b).collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let opt_after = traj.optimum.last_value().unwrap();
    assert!(
        mean(&post) < mean(&pre),
        "bound failed to move down: pre {} post {}",
        mean(&pre),
        mean(&post)
    );
    assert!(
        (mean(&post) - opt_after).abs() < 0.5 * opt_after,
        "post-jump bound {} far from optimum {}",
        mean(&post),
        opt_after
    );
}

/// Every public config type is serde-serializable and deserializable
/// (compile-time check), so experiment configs can be stored and replayed.
#[test]
fn configs_are_serde_capable() {
    fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
    assert_serde::<SystemConfig>();
    assert_serde::<ControlConfig>();
    assert_serde::<WorkloadConfig>();
    assert_serde::<alc_tpsim::engine::RunStats>();
    assert_serde::<alc_core::controller::IsParams>();
    assert_serde::<alc_core::controller::PaParams>();
    assert_serde::<alc_core::measure::Measurement>();
}

/// The gate bound is respected at every instant of a controlled run.
#[test]
fn gate_bound_never_exceeded_without_displacement() {
    let mut sim = Simulator::new(
        ci_system(106),
        WorkloadConfig::default(),
        CcKind::Certification,
        ControlConfig {
            initial_bound: 7,
            warmup_ms: 0.0,
            ..ci_control()
        },
        None,
    );
    sim.set_record_optimum(false);
    for step in 1..=40 {
        sim.run_until(f64::from(step) * 500.0);
        assert!(
            sim.gate().in_system() <= 7,
            "in-system {} exceeds bound 7 at step {step}",
            sim.gate().in_system()
        );
    }
}
