//! Integration test of the *runtime* control loop (no simulator): real
//! threads push work through the gate while the controller adapts the
//! limit from wall-clock measurements — the path a server embedding this
//! library exercises.

// This test IS the wall-clock path: sleeps and Instant timings are the
// behavior under test, not an accident.
#![allow(clippy::disallowed_methods)]

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adaptive_load_control::core::controller::{IncrementalSteps, IsParams};
use adaptive_load_control::core::pipeline::ControlLoop;
use adaptive_load_control::core::sampler::AdaptiveInterval;
use adaptive_load_control::core::PerfIndicator;

#[test]
fn control_loop_limits_a_degrading_workload() {
    let cl = Arc::new(ControlLoop::new(
        IncrementalSteps::new(IsParams {
            initial_bound: 2,
            min_bound: 1,
            max_bound: 32,
            beta: 0.02,
            min_step: 1.0,
            max_step: 3.0,
            // Only 16 workers exist, so any bound above ~16 sees a flat
            // performance signal; δ/γ drift-correction (§4.1) must pull the
            // bound back toward the achievable load instead of letting it
            // random-walk in the flat region.
            delta: 4.0,
            gamma: 4.0,
            ..IsParams::default()
        }),
        PerfIndicator::Throughput,
        AdaptiveInterval::new(100, 20.0, 500.0, 60.0),
    ));
    let running = Arc::new(AtomicBool::new(true));
    let in_flight = Arc::new(AtomicU32::new(0));

    let mut workers = Vec::new();
    for _ in 0..16 {
        let cl = Arc::clone(&cl);
        let running = Arc::clone(&running);
        let in_flight = Arc::clone(&in_flight);
        workers.push(std::thread::spawn(move || {
            while running.load(Ordering::Relaxed) {
                let permit = cl.admit();
                let n = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                // Superlinear degradation past ~6 concurrent jobs.
                let us = 300.0 * (1.0 + (f64::from(n) / 6.0).powi(3));
                let t0 = std::time::Instant::now();
                std::thread::sleep(Duration::from_micros(us as u64));
                in_flight.fetch_sub(1, Ordering::SeqCst);
                cl.complete(t0.elapsed().as_secs_f64() * 1000.0);
                drop(permit);
            }
        }));
    }

    let mut limits = Vec::new();
    let mut measured = Vec::new();
    for _ in 0..50 {
        std::thread::sleep(Duration::from_millis(60));
        let (m, limit, _) = cl.tick();
        limits.push(limit);
        measured.push(m);
    }
    running.store(false, Ordering::Relaxed);
    cl.gate().set_limit(64); // drain queued workers
    for w in workers {
        w.join().unwrap();
    }

    // The loop must have produced real measurements...
    let total: u64 = measured.iter().map(|m| m.departures).sum();
    assert!(total > 200, "only {total} completions measured");
    // ...explored away from the initial limit...
    assert!(
        limits.iter().any(|&l| l != 2),
        "controller never moved: {limits:?}"
    );
    // ...and not pinned itself at the max (the workload degrades hard
    // past ~6, so the controller should live well below 32).
    let tail = &limits[limits.len() / 2..];
    let mean = tail.iter().map(|&l| f64::from(l)).sum::<f64>() / tail.len() as f64;
    assert!(
        mean < 24.0,
        "limit pinned high despite degradation: tail mean {mean}"
    );
    // Gate statistics are consistent after the run.
    let stats = cl.gate().stats();
    assert_eq!(stats.in_use, 0);
    assert_eq!(stats.waiting, 0);
}

#[test]
fn adaptive_interval_reacts_to_real_rates() {
    let cl = ControlLoop::new(
        IncrementalSteps::new(IsParams {
            initial_bound: 8,
            max_bound: 16,
            ..IsParams::default()
        }),
        PerfIndicator::Throughput,
        AdaptiveInterval::new(50, 10.0, 2_000.0, 100.0),
    );
    // Feed a burst of completions, then tick: the interval should shrink
    // toward target/rate (never below min).
    for _ in 0..500 {
        let p = cl.admit();
        cl.complete(0.1);
        drop(p);
    }
    std::thread::sleep(Duration::from_millis(20));
    let (_, _, next) = cl.tick();
    assert!((10.0..=2_000.0).contains(&next));
}
