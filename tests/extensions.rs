//! Integration tests of the extension features: the CC protocols beyond
//! the paper's three, the hybrid and self-tuning controllers, and victim
//! policies — all exercised through the public facade on the full
//! simulator stack.

use std::sync::{Arc, Mutex};

use adaptive_load_control::core::controller::{
    Hybrid, HybridParams, IncrementalSteps, IsParams, LoadController, PaOuterParams, PaParams,
    ParabolaApproximation, SelfTuningPa,
};
use adaptive_load_control::core::measure::Measurement;
use adaptive_load_control::tpsim::config::{CcKind, ControlConfig, SystemConfig, VictimPolicy};
use adaptive_load_control::tpsim::experiment::{run_trajectory, sweep_bounds};
use adaptive_load_control::tpsim::WorkloadConfig;

fn ci_system(seed: u64) -> SystemConfig {
    SystemConfig {
        terminals: 120,
        cpus: 8,
        db_size: 400,
        think: alc_des::dist::Dist::exponential(400.0),
        disk_access: alc_des::dist::Dist::constant(2.0),
        disk_init_commit: alc_des::dist::Dist::constant(60.0),
        seed,
        ..SystemConfig::default()
    }
}

fn ci_control() -> ControlConfig {
    ControlConfig {
        sample_interval_ms: 1000.0,
        warmup_ms: 5_000.0,
        ..ControlConfig::default()
    }
}

fn is_params() -> IsParams {
    IsParams {
        initial_bound: 10,
        max_bound: 120,
        beta: 2.0,
        ..IsParams::default()
    }
}

fn pa_params() -> PaParams {
    PaParams {
        initial_bound: 10,
        max_bound: 120,
        dither_amplitude: 3.0,
        alpha: 0.9,
        ..PaParams::default()
    }
}

/// Adaptive control keeps every *new* protocol near its own swept peak —
/// the paper's protocol-independence claim extended to wound-wait,
/// wait-die and MVTO.
#[test]
fn pa_prevents_thrashing_on_the_new_protocols() {
    let workload = WorkloadConfig {
        write_frac: alc_analytic::surface::Schedule::Constant(0.5),
        ..WorkloadConfig::default()
    };
    for (cc, seed) in [
        (CcKind::WoundWait, 201),
        (CcKind::WaitDie, 202),
        (CcKind::Multiversion, 203),
    ] {
        let sys = ci_system(seed);
        let pts = sweep_bounds(
            &sys,
            &workload,
            cc,
            &[5, 10, 20, 30, 45, 60, 90, 120],
            &ci_control(),
            60_000.0,
        );
        let peak = pts
            .iter()
            .map(|p| p.stats.throughput_per_sec)
            .fold(f64::MIN, f64::max);
        let pa = ParabolaApproximation::new(pa_params());
        let (stats, _) = run_trajectory(
            &sys,
            &workload,
            cc,
            &ci_control(),
            Box::new(pa),
            90_000.0,
            false,
        );
        assert!(
            stats.throughput_per_sec > 0.85 * peak,
            "{cc:?}: PA reached {} vs swept peak {peak}",
            stats.throughput_per_sec
        );
    }
}

/// The hybrid settles at least as tightly as plain IS after a jump of the
/// optimum, end to end.
#[test]
fn hybrid_tracks_jump_no_worse_than_is() {
    let workload = WorkloadConfig::k_jump(4.0, 14.0, 90_000.0);
    let post_jump_err = |ctrl: Box<dyn LoadController>, seed: u64| -> f64 {
        let (_, traj) = run_trajectory(
            &ci_system(seed),
            &workload,
            CcKind::Certification,
            &ci_control(),
            ctrl,
            180_000.0,
            true,
        );
        let pts = traj.bound.points();
        let tail = &pts[pts.len() * 3 / 4..];
        let opt = traj.optimum.last_value().expect("optimum recorded");
        tail.iter().map(|&(_, b)| (b - opt).abs()).sum::<f64>() / tail.len() as f64
    };
    let is_err = post_jump_err(Box::new(IncrementalSteps::new(is_params())), 210);
    let hybrid_err = post_jump_err(
        Box::new(Hybrid::new(HybridParams {
            is: is_params(),
            pa: pa_params(),
            ..HybridParams::default()
        })),
        210,
    );
    assert!(
        hybrid_err <= is_err * 1.1,
        "hybrid settled worse than IS: {hybrid_err} vs {is_err}"
    );
}

/// The α outer loop reacts inside the full simulator loop: a workload
/// jump shortens the PA memory at some point after it.
#[test]
fn self_tuning_pa_shortens_memory_on_workload_jump() {
    /// Wraps SelfTuningPa and records α after every update.
    struct AlphaProbe {
        inner: SelfTuningPa,
        log: Arc<Mutex<Vec<f64>>>,
    }
    impl LoadController for AlphaProbe {
        fn name(&self) -> &'static str {
            "alpha-probe"
        }
        fn update(&mut self, m: &Measurement) -> u32 {
            let b = self.inner.update(m);
            self.log.lock().expect("probe lock").push(self.inner.alpha());
            b
        }
        fn current_bound(&self) -> u32 {
            self.inner.current_bound()
        }
        fn reset(&mut self) {
            self.inner.reset();
        }
    }

    let log = Arc::new(Mutex::new(Vec::new()));
    let probe = AlphaProbe {
        inner: SelfTuningPa::new(
            PaParams {
                alpha: 0.95,
                ..pa_params()
            },
            PaOuterParams::default(),
        ),
        log: Arc::clone(&log),
    };
    let jump_at = 90_000.0;
    let workload = WorkloadConfig::k_jump(4.0, 16.0, jump_at);
    let control = ControlConfig {
        warmup_ms: 0.0,
        ..ci_control()
    };
    run_trajectory(
        &ci_system(211),
        &workload,
        CcKind::Certification,
        &control,
        Box::new(probe),
        180_000.0,
        false,
    );
    let alphas = log.lock().expect("probe lock").clone();
    assert!(alphas.len() > 150, "only {} control ticks", alphas.len());
    let jump_idx = (jump_at / control.sample_interval_ms) as usize;
    let alpha_at_jump = alphas[jump_idx - 1];
    let min_after: f64 = alphas[jump_idx..jump_idx + 40]
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    assert!(
        min_after < alpha_at_jump,
        "memory never shortened after the jump: α {alpha_at_jump} → min {min_after}"
    );
}

/// Same seed, same statistics — also for the new protocols and victim
/// policies (regression guard for determinism).
#[test]
fn new_features_are_deterministic()
{
    let run = || {
        let workload = WorkloadConfig::k_jump(4.0, 12.0, 20_000.0);
        let ctl = ControlConfig {
            displacement: true,
            victim_policy: VictimPolicy::LeastProgress,
            sample_interval_ms: 500.0,
            warmup_ms: 2_000.0,
            ..ControlConfig::default()
        };
        let pa = ParabolaApproximation::new(pa_params());
        let (stats, _) = run_trajectory(
            &ci_system(212),
            &workload,
            CcKind::WoundWait,
            &ctl,
            Box::new(pa),
            40_000.0,
            false,
        );
        stats
    };
    assert_eq!(run(), run());
}

/// Degenerate controller configurations must stay finite and bounded in
/// the full loop (failure injection: zero dither, bound range of one).
#[test]
fn degenerate_controller_configs_stay_sane() {
    let pa = ParabolaApproximation::new(PaParams {
        initial_bound: 3,
        min_bound: 3,
        max_bound: 3,
        dither_amplitude: 0.0,
        ..PaParams::default()
    });
    let (stats, traj) = run_trajectory(
        &ci_system(213),
        &WorkloadConfig::default(),
        CcKind::Certification,
        &ci_control(),
        Box::new(pa),
        30_000.0,
        false,
    );
    assert!(stats.throughput_per_sec.is_finite());
    assert!(stats.commits > 0);
    for &(_, b) in traj.bound.points() {
        assert_eq!(b, 3.0, "pinned range must pin the bound");
    }
}
