//! Admission control in an *open* system — the extension of the paper's
//! closed model to an external arrival stream.
//!
//! The closed model (Figure 11) bounds the offered load by construction:
//! N terminals cannot submit more than N transactions. A real front door
//! faces an open stream whose rate answers to nobody. This example sweeps
//! a Poisson arrival rate across the system's capacity and compares the
//! uncontrolled system against one whose gate is steered by the Parabola
//! Approximation controller.
//!
//! ```sh
//! cargo run --release --example open_system
//! ```

use adaptive_load_control::analytic::surface::Schedule;
use adaptive_load_control::core::controller::{PaParams, ParabolaApproximation};
use adaptive_load_control::des::dist::Dist;
use adaptive_load_control::tpsim::config::{
    ArrivalProcess, CcKind, ControlConfig, SystemConfig,
};
use adaptive_load_control::tpsim::experiment::{run_trajectory, stationary_run};
use adaptive_load_control::tpsim::WorkloadConfig;

fn main() {
    let base = SystemConfig {
        terminals: 400, // slot pool (connection limit) in open mode
        cpus: 8,
        db_size: 400,
        think: Dist::exponential(400.0),
        disk_access: Dist::constant(2.0),
        disk_init_commit: Dist::constant(60.0),
        seed: 0x0BE17,
        ..SystemConfig::default()
    };
    let workload = WorkloadConfig {
        write_frac: Schedule::Constant(0.5),
        query_frac: Schedule::Constant(0.1),
        ..WorkloadConfig::default()
    };
    let control = ControlConfig {
        sample_interval_ms: 1000.0,
        warmup_ms: 10_000.0,
        ..ControlConfig::default()
    };

    println!(
        "Poisson arrivals vs a ~capacity-limited TP system ({} slots).\n",
        base.terminals
    );
    println!(
        "{:>10}  {:>15}  {:>12}  {:>15}  {:>12}  {:>10}  {:>8}",
        "offered/s", "T uncontrolled", "T with PA", "resp unc. (ms)", "resp PA (ms)", "lost unc.", "lost PA"
    );

    for rate in [25.0, 50.0, 75.0, 100.0, 150.0, 200.0] {
        let sys = SystemConfig {
            arrival: ArrivalProcess::Open {
                interarrival: Dist::exponential(1000.0 / rate),
            },
            ..base
        };
        let uncontrolled = stationary_run(
            &sys,
            &workload,
            CcKind::Certification,
            u32::MAX,
            &control,
            90_000.0,
        );
        let pa = ParabolaApproximation::new(PaParams {
            initial_bound: 10,
            max_bound: 400,
            dither_amplitude: 3.0,
            ..PaParams::default()
        });
        let (with_pa, _) = run_trajectory(
            &sys,
            &workload,
            CcKind::Certification,
            &control,
            Box::new(pa),
            90_000.0,
            false,
        );
        println!(
            "{:>10.0}  {:>15.1}  {:>12.1}  {:>15.0}  {:>12.0}  {:>10}  {:>8}",
            rate,
            uncontrolled.throughput_per_sec,
            with_pa.throughput_per_sec,
            uncontrolled.mean_response_ms,
            with_pa.mean_response_ms,
            uncontrolled.lost,
            with_pa.lost,
        );
    }

    println!(
        "\nBelow capacity the gate is invisible. Past it, the uncontrolled system\n\
         lets every arrival in, data contention turns concurrency into aborted\n\
         work, and goodput collapses; the controlled system keeps the MPL at the\n\
         optimum, holds goodput at the peak, and sheds the excess as queueing."
    );
}
