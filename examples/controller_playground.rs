//! Controller playground: race every controller on synthetic
//! load–performance surfaces (no simulator, instant).
//!
//! Surfaces come from `alc-analytic`: a stationary ridge, a jumping
//! ridge (Figs. 13/14), a sinusoidal drift (§9), and the flat hump that
//! breaks naive parabola fitting (Fig. 7). Reported score: mean |n* −
//! n_opt| over the final two thirds of the run.
//!
//! ```sh
//! cargo run --release --example controller_playground
//! ```

use adaptive_load_control::analytic::surface::{
    FlatHumpSurface, RidgeSurface, Schedule, Surface,
};
use adaptive_load_control::core::controller::{
    FixedBound, IncrementalSteps, IsParams, LoadController, PaParams, ParabolaApproximation,
};
use adaptive_load_control::core::Measurement;

const STEPS: usize = 600;
const INTERVAL_MS: f64 = 2000.0;

fn make_controllers() -> Vec<(&'static str, Box<dyn LoadController>)> {
    vec![
        (
            "incremental-steps",
            Box::new(IncrementalSteps::new(IsParams {
                initial_bound: 50,
                max_bound: 800,
                beta: 1.0,
                ..IsParams::default()
            })),
        ),
        (
            "parabola-approx",
            Box::new(ParabolaApproximation::new(PaParams {
                initial_bound: 50,
                max_bound: 800,
                ..PaParams::default()
            })),
        ),
        ("fixed@150", Box::new(FixedBound::new(150))),
    ]
}

fn race(name: &str, surface: &dyn Surface) {
    println!("\n--- {name} ---");
    for (ctrl_name, mut ctrl) in make_controllers() {
        let mut bound = ctrl.current_bound();
        let mut err = 0.0;
        let mut count = 0.0;
        for i in 0..STEPS {
            let t = i as f64 * INTERVAL_MS;
            let n = f64::from(bound);
            let perf = surface.performance(n, t);
            bound = ctrl.update(&Measurement::basic(t + INTERVAL_MS, INTERVAL_MS, perf, n));
            if i > STEPS / 3 {
                err += (f64::from(bound) - surface.optimum(t)).abs();
                count += 1.0;
            }
        }
        println!(
            "  {:<20} tracking error {:>7.1}  (final bound {:>4}, final optimum {:>6.1})",
            ctrl_name,
            err / count,
            bound,
            surface.optimum((STEPS - 1) as f64 * INTERVAL_MS),
        );
    }
}

fn main() {
    race(
        "stationary ridge (optimum at 150)",
        &RidgeSurface::stationary(150.0, 100.0, 2.0),
    );
    race(
        "jumping ridge (300 → 120 mid-run, Figs. 13/14)",
        &RidgeSurface {
            position: Schedule::Jump {
                at: STEPS as f64 / 2.0 * INTERVAL_MS,
                before: 300.0,
                after: 120.0,
            },
            height: Schedule::Constant(80.0),
            steepness: 2.0,
        },
    );
    race(
        "sinusoidal drift (150 ± 80, §9)",
        &RidgeSurface {
            position: Schedule::Sinusoid {
                mean: 150.0,
                amplitude: 80.0,
                period: STEPS as f64 * INTERVAL_MS / 3.0,
            },
            height: Schedule::Constant(80.0),
            steepness: 2.0,
        },
    );
    race(
        "flat hump (Fig. 7 pathology, optimum at 200)",
        &FlatHumpSurface {
            center: Schedule::Constant(200.0),
            height: Schedule::Constant(80.0),
            width: 120.0,
        },
    );
    println!("\nthe fixed bound wins only when the optimum happens to sit on it; the feedback controllers follow it everywhere");
}
