//! Embedding the admission-control runtime in a threaded server.
//!
//! A pool of worker threads pushes jobs through [`alc_runtime::ControlLoop`]:
//! each worker calls `admit()` before its unit of work and
//! `complete(outcome)` after, while a ticker thread closes the
//! measurement window at a fixed cadence so the control law can move the
//! MPL bound. The law here is the paper's Incremental Steps controller,
//! run *unchanged* through the [`PaperLaw`] adapter — the same object the
//! simulator validates.
//!
//! The simulated "work" degrades when too many jobs run at once (think
//! lock contention): latency grows cubically with concurrency, and jobs
//! racing past a soft capacity occasionally abort. The controller only
//! ever sees its telemetry window, yet settles near the sweet spot.
//!
//! The run also captures a JSONL gate log and reads it back — the same
//! format `scenario run --gate-log` emits and `scenario replay` checks
//! conformance against. `scenarios/embed-gate.json` carries the same
//! controller as a spec, so the captured log replays through
//!
//! ```sh
//! cargo run --release --example embed_gate -- target/embed
//! scenario replay scenarios/embed-gate.json target/embed/embed_gate_gatelog.jsonl
//! ```
//!
//! (CI does exactly that.) Each tick also snapshots
//! [`ControlLoop::metrics`]; the series is exported as metrics JSONL
//! and read back, asserting the byte round trip.

// A live threaded demo: wall-clock sleeps stand in for real work.
#![allow(clippy::disallowed_methods)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adaptive_load_control::core::controller::{IncrementalSteps, IsParams};
use adaptive_load_control::core::PerfIndicator;
use adaptive_load_control::runtime::{
    read_gate_log, read_metrics_jsonl, write_metrics_jsonl, AdmissionPolicy, ControlLoop,
    GateLogHeader, JsonlSink, Outcome, PaperLaw,
};

const WORKERS: usize = 8;
const JOBS_PER_WORKER: usize = 120;
const TICK: Duration = Duration::from_millis(25);

fn main() {
    let controller = IncrementalSteps::new(IsParams {
        initial_bound: 2,
        min_bound: 1,
        max_bound: 32,
        beta: 0.05,
        min_step: 1.0,
        max_step: 4.0,
        ..IsParams::default()
    });
    let rt = Arc::new(ControlLoop::new(
        Box::new(PaperLaw::new(Box::new(controller))),
        PerfIndicator::Throughput,
        AdmissionPolicy::QueueTimeout(Duration::from_millis(250)),
    ));

    // Artifacts land in the directory named by the first CLI argument
    // (so CI can pick them up), or the temp dir when run bare.
    let out_dir = std::env::args()
        .nth(1)
        .map_or_else(std::env::temp_dir, std::path::PathBuf::from);
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    // Capture everything the loop sees as a JSONL gate log.
    let log_path = out_dir.join("embed_gate_gatelog.jsonl");
    let header = GateLogHeader {
        scenario: "embed_gate".to_string(),
        variant: String::new(),
        replication: 0,
        seed: 0,
        quick: false,
    };
    let file = std::fs::File::create(&log_path).expect("create gate log");
    let sink = JsonlSink::new(std::io::BufWriter::new(file), &header).expect("write header");
    rt.set_gate_log(Box::new(sink));

    // Ticker: closes the measurement window at a fixed cadence.
    let stop = Arc::new(AtomicBool::new(false));
    let ticker = {
        let rt = Arc::clone(&rt);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last_bound = 0;
            let mut snapshots = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(TICK);
                let d = rt.tick();
                snapshots.push(rt.metrics());
                if d.bound != last_bound {
                    println!(
                        "  t={:6.0}ms  bound {:>2} -> {:>2}  (tput {:6.1}/s, p95 {:5.1}ms, shed {})",
                        d.at_ms,
                        last_bound,
                        d.bound,
                        d.window.measurement.throughput_per_sec(),
                        d.window.p95_ms,
                        d.window.shed
                    );
                    last_bound = d.bound;
                }
            }
            snapshots
        })
    };

    // Worker pool: admit -> work -> complete. Work degrades with
    // concurrency; overshoot makes aborts likelier.
    let running = Arc::new(AtomicU64::new(0));
    let shed_total = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let rt = Arc::clone(&rt);
            let running = Arc::clone(&running);
            let shed_total = Arc::clone(&shed_total);
            s.spawn(move || {
                for j in 0..JOBS_PER_WORKER {
                    let Some(permit) = rt.admit() else {
                        shed_total.fetch_add(1, Ordering::Relaxed);
                        continue;
                    };
                    let n = running.fetch_add(1, Ordering::Relaxed) + 1;
                    let base = 1.0 + ((w * 31 + j * 7) % 3) as f64;
                    let millis = base * (1.0 + (n as f64 / 10.0).powi(3));
                    std::thread::sleep(Duration::from_secs_f64(millis / 1000.0));
                    running.fetch_sub(1, Ordering::Relaxed);
                    // Past the soft capacity, contention turns into aborts.
                    let outcome = if n > 12 && (w + j) % 3 == 0 {
                        Outcome::Abort { conflicts: n }
                    } else {
                        Outcome::Commit {
                            response_ms: millis,
                            conflicts: u64::from(n > 8),
                        }
                    };
                    rt.complete(permit, outcome);
                }
            });
        }
    });
    stop.store(true, Ordering::Relaxed);
    let snapshots = ticker.join().expect("ticker thread");

    let stats = rt.gate().stats();
    println!(
        "\ndone: {} admitted, {} abandoned at the gate, {} shed by workers, final bound {}",
        stats.total_admitted,
        stats.total_abandoned,
        shed_total.load(Ordering::Relaxed),
        rt.gate().limit()
    );

    // Flush the log (dropping the boxed sink flushes its BufWriter) and
    // read it back — the round trip `scenario replay` builds on.
    drop(rt.take_gate_log());
    let file = std::fs::File::open(&log_path).expect("open gate log");
    let (read_header, events) =
        read_gate_log(std::io::BufReader::new(file)).expect("parse gate log");
    assert_eq!(read_header.expect("header").scenario, "embed_gate");
    println!(
        "gate log: {} events captured at {}",
        events.len(),
        log_path.display()
    );

    // Export the per-tick metrics snapshots and prove the JSONL round
    // trip: read back equal, re-serialize byte-identical.
    let metrics_path = out_dir.join("embed_gate_metrics.jsonl");
    let mut buf = Vec::new();
    write_metrics_jsonl(&mut buf, &snapshots).expect("serialize metrics");
    std::fs::write(&metrics_path, &buf).expect("write metrics");
    let back = read_metrics_jsonl(std::io::BufReader::new(
        std::fs::File::open(&metrics_path).expect("open metrics"),
    ))
    .expect("parse metrics");
    assert_eq!(back, snapshots, "metrics JSONL round-trips");
    let mut again = Vec::new();
    write_metrics_jsonl(&mut again, &back).expect("re-serialize metrics");
    assert_eq!(again, buf, "metrics JSONL is byte-stable");
    println!(
        "metrics: {} snapshot(s) round-tripped at {}",
        snapshots.len(),
        metrics_path.display()
    );
}
