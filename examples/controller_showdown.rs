//! Controller showdown on the Figure 13/14 jump scenario.
//!
//! The paper's headline dynamic experiment: the workload's `k` jumps
//! mid-run, moving the optimum MPL, and each controller must re-find the
//! ridge. The paper compares IS (fast but sloppy) against PA (slower but
//! accurate); this example adds the extensions built on top of them —
//! the self-tuning outer loops (§5) and the IS→PA hybrid — and reports
//! tracking error against the analytic optimum plus realized throughput.
//!
//! ```sh
//! cargo run --release --example controller_showdown
//! ```

use adaptive_load_control::core::controller::{
    Hybrid, HybridParams, IncrementalSteps, IsParams, LoadController, OuterParams, PaOuterParams,
    PaParams, ParabolaApproximation, SelfTuningIs, SelfTuningPa,
};
use adaptive_load_control::des::dist::Dist;
use adaptive_load_control::tpsim::config::{ArrivalProcess, CcKind, ControlConfig, SystemConfig};
use adaptive_load_control::tpsim::experiment::run_trajectory;
use adaptive_load_control::tpsim::workload::WorkloadConfig;

const HORIZON_MS: f64 = 300_000.0;
const JUMP_AT_MS: f64 = 150_000.0;

fn sys() -> SystemConfig {
    SystemConfig {
        terminals: 120,
        arrival: ArrivalProcess::Closed,
        cpus: 8,
        cpu_phase: Dist::exponential(4.0),
        disk_access: Dist::constant(2.0),
        disk_init_commit: Dist::constant(50.0),
        think: Dist::exponential(300.0),
        restart_delay: Dist::constant(5.0),
        db_size: 500,
        resample_on_restart: true,
        seed: 0x1991,
    }
}

fn is_params() -> IsParams {
    IsParams {
        initial_bound: 10,
        min_bound: 1,
        max_bound: 120,
        beta: 2.0,
        ..IsParams::default()
    }
}

fn pa_params() -> PaParams {
    PaParams {
        initial_bound: 10,
        min_bound: 1,
        max_bound: 120,
        dither_amplitude: 3.0,
        alpha: 0.9,
        ..PaParams::default()
    }
}

fn contenders() -> Vec<(&'static str, Box<dyn LoadController>)> {
    vec![
        (
            "incremental-steps",
            Box::new(IncrementalSteps::new(is_params())),
        ),
        (
            "parabola-approx",
            Box::new(ParabolaApproximation::new(pa_params())),
        ),
        (
            "self-tuning-is",
            Box::new(SelfTuningIs::new(is_params(), OuterParams::default())),
        ),
        (
            "self-tuning-pa",
            Box::new(SelfTuningPa::new(pa_params(), PaOuterParams::default())),
        ),
        (
            "hybrid-is-pa",
            Box::new(Hybrid::new(HybridParams {
                is: is_params(),
                pa: pa_params(),
                ..HybridParams::default()
            })),
        ),
    ]
}

fn main() {
    // k jumps 4 → 14 halfway: the optimum MPL drops sharply (Figure 13/14).
    let workload = WorkloadConfig::k_jump(4.0, 14.0, JUMP_AT_MS);
    let control = ControlConfig {
        sample_interval_ms: 1000.0,
        warmup_ms: 10_000.0,
        ..ControlConfig::default()
    };

    println!(
        "jump scenario: k 4 → 14 at t = {}s (optimum moves down), horizon {}s\n",
        JUMP_AT_MS / 1000.0,
        HORIZON_MS / 1000.0
    );
    println!(
        "{:>18}  {:>12}  {:>14}  {:>14}  {:>10}",
        "controller", "throughput/s", "track-err pre", "track-err post", "mean n*"
    );

    for (name, ctrl) in contenders() {
        let (stats, traj) = run_trajectory(
            &sys(),
            &workload,
            CcKind::Certification,
            &control,
            ctrl,
            HORIZON_MS,
            true,
        );
        // Tracking error = mean |n*(t) − n_opt(t)|, split at the jump.
        let (mut pre_err, mut pre_n) = (0.0, 0u32);
        let (mut post_err, mut post_n) = (0.0, 0u32);
        for (&(t, bound), &(_, opt)) in traj.bound.points().iter().zip(traj.optimum.points()) {
            if t < JUMP_AT_MS {
                pre_err += (bound - opt).abs();
                pre_n += 1;
            } else if t > JUMP_AT_MS + 30_000.0 {
                // Skip the 30 s reaction window: this measures *settling*,
                // the paper's accuracy criterion, not reaction speed.
                post_err += (bound - opt).abs();
                post_n += 1;
            }
        }
        println!(
            "{:>18}  {:>12.1}  {:>14.1}  {:>14.1}  {:>10.1}",
            name,
            stats.throughput_per_sec,
            pre_err / f64::from(pre_n.max(1)),
            post_err / f64::from(post_n.max(1)),
            stats.mean_bound,
        );
    }

    println!(
        "\nExpected shape (paper §9): IS reacts fast but hunts after the jump;\n\
         PA settles slower but tighter; the outer loops and the hybrid keep\n\
         PA-grade settling without hand-tuned gains."
    );
}
