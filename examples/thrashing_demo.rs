//! The thrashing curve (paper Figure 1), from the transaction processing
//! simulator: sweep the fixed MPL bound and watch throughput rise through
//! underload, flatten at saturation, and collapse in overload.
//!
//! Also prints the analytic prediction (MVA × self-limiting certification
//! model) next to the simulation — the two agree within a few percent.
//!
//! ```sh
//! cargo run --release --example thrashing_demo
//! ```

use adaptive_load_control::tpsim::config::{CcKind, ControlConfig, SystemConfig};
use adaptive_load_control::tpsim::experiment::sweep_bounds;
use adaptive_load_control::tpsim::WorkloadConfig;

fn main() {
    let sys = SystemConfig {
        terminals: 600,
        seed: 0xD_E401,
        ..SystemConfig::default()
    };
    let workload = WorkloadConfig::default();
    let control = ControlConfig::default();
    let bounds = [10, 25, 50, 75, 100, 150, 200, 300, 400, 600];

    println!("sweeping MPL bound on a {}-terminal closed system...", sys.terminals);
    let points = sweep_bounds(
        &sys,
        &workload,
        CcKind::Certification,
        &bounds,
        &control,
        90_000.0,
    );

    let model = workload.occ_model_at(0.0, &sys);
    let curve = model.curve(600);

    println!("\n  bound   sim tx/s   model tx/s   abort%   phase");
    let peak = points
        .iter()
        .map(|p| p.stats.throughput_per_sec)
        .fold(f64::MIN, f64::max);
    for p in &points {
        let t = p.stats.throughput_per_sec;
        let phase = if t > 0.95 * peak {
            "≈ optimum"
        } else if p.stats.cpu_utilization < 0.85 {
            "underload"
        } else if t > 0.8 * peak {
            "saturation"
        } else {
            "THRASHING"
        };
        println!(
            "  {:>5}   {:>8.1}   {:>10.1}   {:>5.1}%   {}",
            p.x,
            t,
            curve.throughput(f64::from(p.x)) * 1000.0,
            100.0 * p.stats.abort_ratio,
            phase
        );
    }
    println!(
        "\nanalytic optimum: MPL {} — an admission bound there prevents the collapse",
        curve.optimal_mpl()
    );
}
