//! Adaptive control vs the static MPL knob (the paper's §1 motivation).
//!
//! The workload changes mid-run (`k` jumps from 8 to 16 items per
//! transaction), which moves the optimal MPL from ≈150 down to ≈100. A
//! fixed bound tuned perfectly for the *old* workload quietly loses
//! throughput after the shift; the Parabola Approximation re-tunes itself.
//!
//! ```sh
//! cargo run --release --example adaptive_vs_static
//! ```

use adaptive_load_control::core::controller::{
    FixedBound, LoadController, PaParams, ParabolaApproximation,
};
use adaptive_load_control::tpsim::config::{CcKind, ControlConfig, SystemConfig};
use adaptive_load_control::tpsim::experiment::run_trajectory;
use adaptive_load_control::tpsim::WorkloadConfig;

fn main() {
    let horizon = 1_200_000.0; // 20 simulated minutes
    let sys = SystemConfig {
        terminals: 500,
        seed: 0xD_E402,
        ..SystemConfig::default()
    };
    let workload = WorkloadConfig::k_jump(8.0, 16.0, horizon / 2.0);
    let control = ControlConfig {
        warmup_ms: 0.0,
        ..ControlConfig::default()
    };

    let opt_before = workload.analytic_optimum(0.0, &sys, 800);
    let opt_after = workload.analytic_optimum(horizon, &sys, 800);
    println!(
        "optimal MPL moves {} → {} when k jumps 8 → 16 at t = {}s\n",
        opt_before,
        opt_after,
        horizon / 2000.0
    );

    let candidates: Vec<(&str, Box<dyn LoadController>)> = vec![
        (
            "fixed@old-optimum",
            Box::new(FixedBound::new(opt_before)),
        ),
        (
            "adaptive (PA)",
            Box::new(ParabolaApproximation::new(PaParams {
                initial_bound: 50,
                max_bound: 800,
                dither_amplitude: 8.0,
                ..PaParams::default()
            })),
        ),
    ];

    println!("{:<18} {:>12} {:>12} {:>12}", "policy", "tx/s overall", "abort ratio", "final bound");
    for (name, ctrl) in candidates {
        let (stats, traj) = run_trajectory(
            &sys,
            &workload,
            CcKind::Certification,
            &control,
            ctrl,
            horizon,
            false,
        );
        println!(
            "{:<18} {:>12.1} {:>12.2} {:>12.0}",
            name,
            stats.throughput_per_sec,
            stats.abort_ratio,
            traj.bound.last_value().unwrap_or(f64::NAN),
        );
    }
    println!("\nthe static knob is only right until the workload moves — the paper's argument for feedback control");
}
