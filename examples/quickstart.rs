//! Quickstart: adaptive concurrency limiting for a real (threaded)
//! workload.
//!
//! A pool of worker threads pushes jobs through an [`AdaptiveGate`] whose
//! limit is steered by the Incremental Steps controller — the same
//! feedback loop the paper applies to transaction processing, applied to
//! any server that degrades under excessive concurrency.
//!
//! The simulated "work" here degrades when too many jobs run at once
//! (think lock contention or cache thrash): each job takes
//! `base · (1 + (n/12)³)` milliseconds at concurrency `n`. The controller
//! discovers the sweet spot without being told this formula.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

// A live threaded demo: wall-clock sleeps stand in for real work.
#![allow(clippy::disallowed_methods)]

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adaptive_load_control::core::controller::{IncrementalSteps, IsParams};
use adaptive_load_control::core::pipeline::ControlLoop;
use adaptive_load_control::core::sampler::AdaptiveInterval;
use adaptive_load_control::core::PerfIndicator;

fn main() {
    let controller = IncrementalSteps::new(IsParams {
        initial_bound: 2,
        min_bound: 1,
        max_bound: 64,
        beta: 0.05,
        min_step: 1.0,
        max_step: 4.0,
        ..IsParams::default()
    });
    let control = Arc::new(ControlLoop::new(
        controller,
        PerfIndicator::Throughput,
        AdaptiveInterval::new(200, 100.0, 1000.0, 250.0),
    ));
    let running = Arc::new(AtomicBool::new(true));
    let in_flight = Arc::new(AtomicU32::new(0));

    // 32 workers compete for admission; the gate decides how many may run.
    let mut handles = Vec::new();
    for _ in 0..32 {
        let control = Arc::clone(&control);
        let running = Arc::clone(&running);
        let in_flight = Arc::clone(&in_flight);
        handles.push(std::thread::spawn(move || {
            while running.load(Ordering::Relaxed) {
                let permit = control.admit();
                let n = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                // Work that degrades superlinearly with concurrency.
                let ms = 2.0 * (1.0 + (f64::from(n) / 12.0).powi(3));
                let t0 = std::time::Instant::now();
                std::thread::sleep(Duration::from_micros((ms * 1000.0) as u64));
                in_flight.fetch_sub(1, Ordering::SeqCst);
                control.complete(t0.elapsed().as_secs_f64() * 1000.0);
                drop(permit);
            }
        }));
    }

    println!("interval  limit  throughput/s  mean_resp_ms  queued");
    for _ in 0..40 {
        std::thread::sleep(Duration::from_millis(250));
        let (m, bound, _next) = control.tick();
        let stats = control.gate().stats();
        println!(
            "{:>8.1}s {:>5}  {:>12.0}  {:>12.2}  {:>6}",
            m.at_ms / 1000.0,
            bound,
            m.performance,
            m.mean_response_ms,
            stats.waiting,
        );
    }
    running.store(false, Ordering::Relaxed);
    // Unblock any workers still queued at the gate.
    control.gate().set_limit(64);
    for h in handles {
        h.join().expect("worker");
    }
    let final_limit = control.gate().limit();
    println!("\nconverged concurrency limit: {final_limit} (work degrades sharply past ~12)");
}
