//! Thrashing across concurrency-control protocols.
//!
//! §1 splits CC algorithms into a blocking class (2PL and its deadlock-
//! prevention variants) and a non-blocking class (certification, basic
//! T/O, multiversion T/O) and argues both thrash — by different
//! mechanisms. This example sweeps a fixed MPL bound across all six
//! protocols in the simulator and prints each load–throughput curve: the
//! optimum's *position and height are protocol-dependent*, which is
//! exactly why a feedback controller beats any protocol-derived constant.
//!
//! ```sh
//! cargo run --release --example cc_comparison
//! ```

use adaptive_load_control::tpsim::config::{ArrivalProcess, CcKind, ControlConfig, SystemConfig};
use adaptive_load_control::tpsim::experiment::sweep_bounds;
use adaptive_load_control::tpsim::workload::WorkloadConfig;
use adaptive_load_control::analytic::surface::Schedule;
use adaptive_load_control::des::dist::Dist;

fn main() {
    let sys = SystemConfig {
        terminals: 150,
        arrival: ArrivalProcess::Closed,
        cpus: 8,
        cpu_phase: Dist::exponential(4.0),
        disk_access: Dist::constant(3.0),
        disk_init_commit: Dist::constant(50.0),
        think: Dist::exponential(400.0),
        restart_delay: Dist::constant(5.0),
        db_size: 600,
        resample_on_restart: true,
        seed: 0xCCC0_FFEE,
    };
    // A write-heavy mix so data contention bites within the sweep range.
    let workload = WorkloadConfig {
        k: Schedule::Constant(8.0),
        query_frac: Schedule::Constant(0.1),
        write_frac: Schedule::Constant(0.5),
        ..WorkloadConfig::default()
    };
    let control = ControlConfig {
        sample_interval_ms: 1000.0,
        warmup_ms: 5_000.0,
        ..ControlConfig::default()
    };
    let bounds = [2u32, 4, 8, 12, 18, 26, 40, 60, 90, 130];

    println!("load–throughput (commits/s) by protocol; database D = {}", sys.db_size);
    print!("{:>22}", "bound:");
    for b in bounds {
        print!("{b:>7}");
    }
    println!();

    for cc in CcKind::ALL {
        let points = sweep_bounds(&sys, &workload, cc, &bounds, &control, 60_000.0);
        let name = match cc {
            CcKind::Certification => "certification (OCC)",
            CcKind::TwoPhaseLocking => "2PL + detection",
            CcKind::TimestampOrdering => "basic T/O",
            CcKind::WoundWait => "2PL + wound-wait",
            CcKind::WaitDie => "2PL + wait-die",
            CcKind::Multiversion => "MVTO",
        };
        print!("{name:>22}");
        for p in &points {
            print!("{:>7.1}", p.stats.throughput_per_sec);
        }
        let peak = points
            .iter()
            .max_by(|a, b| a.stats.throughput_per_sec.total_cmp(&b.stats.throughput_per_sec))
            .expect("non-empty sweep");
        println!("   peak @ n*={}", peak.x);
    }

    println!(
        "\nEach protocol peaks at a different MPL and falls off at its own rate —\n\
         a fixed bound tuned for one protocol (or one workload) is wrong for the\n\
         others, which is the paper's case for feedback control (§1)."
    );
}
