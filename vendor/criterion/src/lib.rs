//! A vendored, dependency-free subset of the `criterion` API.
//!
//! The build environment is hermetic (no crates.io access), so this shim
//! keeps the workspace's benchmarks compiling and running: it calibrates
//! an iteration count to a small time budget, times the routine, and
//! prints a mean ns/iter line. It performs none of criterion's
//! statistics (no outlier analysis, no HTML reports).

// Wall-clock timing is this crate's entire job.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark, nanoseconds.
const BUDGET_NS: u128 = 200_000_000;

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.into(), &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            _criterion: self,
        }
    }
}

/// A group of related benchmarks (prefixes the group name).
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name.into()), &mut f);
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// How `iter_batched` amortizes setup; the shim runs one setup per
/// routine call regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Passed to the benchmark closure; times the hot routine.
pub struct Bencher {
    /// Total time attributed to the routine across `iters` iterations.
    elapsed: Duration,
    /// Iterations executed by the measured pass.
    iters: u64,
}

impl Bencher {
    /// Times `routine`, running it repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Calibration pass: grow until the routine is measurable.
        let mut n = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let spent = start.elapsed();
            if spent.as_nanos() * 8 >= BUDGET_NS || n >= u64::MAX / 2 {
                break;
            }
            n = n.saturating_mul(2);
        }
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = n;
    }

    /// Times with caller-measured durations: `routine(iters)` must
    /// return the time spent on `iters` iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        let mut n = 1u64;
        loop {
            let spent = routine(n);
            if spent.as_nanos() * 8 >= BUDGET_NS || n >= u64::MAX / 2 {
                self.elapsed = spent;
                self.iters = n;
                return;
            }
            n = n.saturating_mul(2);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut n = 1u64;
        loop {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let spent = start.elapsed();
            if spent.as_nanos() * 8 >= BUDGET_NS || n >= 1 << 20 {
                self.elapsed = spent;
                self.iters = n;
                return;
            }
            n = n.saturating_mul(2);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("bench {name:<50} (no measurement)");
        return;
    }
    let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    println!("bench {name:<50} {ns:>14.1} ns/iter ({} iters)", b.iters);
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
