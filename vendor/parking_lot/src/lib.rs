//! A vendored, dependency-free subset of the `parking_lot` API.
//!
//! The build environment is hermetic (no crates.io access), so this shim
//! provides the `parking_lot` surface the workspace uses — [`Mutex`],
//! [`Condvar`], [`WaitTimeoutResult`] — implemented over `std::sync`.
//! Like the real crate (and unlike raw `std::sync`):
//!
//! * `lock()` returns the guard directly, with no poisoning `Result`;
//!   a panic while holding the lock does not poison it for later users.
//! * `Condvar::wait` takes `&mut MutexGuard` instead of consuming the
//!   guard, and `wait_until` takes an [`Instant`] deadline.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Instant;

/// A mutual-exclusion primitive. `lock()` never returns a poisoned error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Poisoning is ignored:
    /// if a prior holder panicked the data is handed over as-is.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard for [`Mutex`]. The `Option` exists so `Condvar::wait` can
/// temporarily take the underlying std guard by value; it is `Some` at
/// every point user code can observe.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
    }

    /// Blocks until notified or until `deadline`; spurious wakes are
    /// possible, exactly as with the real crate.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        #[allow(clippy::disallowed_methods)] // deadline-based condvar wait is inherently wall-clock
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (reacquired, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // wall-clock timeouts are the API under test
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _g = m2.lock();
            panic!("holder dies");
        }));
        assert_eq!(*m.lock(), 0, "no poisoning");
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            *started = true;
            drop(started);
            cvar.notify_one();
        });
        let (lock, cvar) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cvar.wait(&mut started);
        }
        drop(started);
        h.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
