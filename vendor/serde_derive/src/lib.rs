//! Derive macros for the vendored `serde` shim.
//!
//! The hermetic build has no `syn`/`quote`, so this crate parses the
//! derive input by walking `proc_macro::TokenStream` directly and emits
//! the generated impls as source strings. Supported shapes — which cover
//! every derived type in this workspace — are non-generic structs
//! (named, tuple, unit) and enums whose variants are unit, tuple or
//! struct-like. Anything else produces a `compile_error!` naming the
//! offending type so the gap is obvious at build time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct { fields: Vec<String> },
    TupleStruct { arity: usize },
    UnitStruct,
    Enum { variants: Vec<Variant> },
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the shim's `serde::Serialize` (struct → map, tuple struct →
/// seq, enum → externally tagged).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the shim's `serde::Deserialize`, the inverse of the derived
/// `Serialize` representation.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&str, &Shape) -> String) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => gen(&name, &shape)
            .parse()
            .expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);
    let kw = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("serde_derive: expected struct/enum, got {other:?}")),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("serde_derive: expected type name, got {other:?}")),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive shim: `{name}` is generic; write the Serialize/Deserialize impls by hand"
        ));
    }
    match kw.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::NamedStruct {
                    fields: parse_named_fields(g.stream())?,
                }))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Shape::TupleStruct {
                    arity: count_tuple_fields(g.stream()),
                }))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
            other => Err(format!("serde_derive: unexpected struct body {other:?}")),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum {
                    variants: parse_variants(g.stream())?,
                }))
            }
            other => Err(format!("serde_derive: unexpected enum body {other:?}")),
        },
        other => Err(format!("serde_derive: cannot derive for `{other}` items")),
    }
}

type Toks = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skips leading `#[...]` attributes and a `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(toks: &mut Toks) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                toks.next();
                if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    toks.next();
                }
            }
            _ => return,
        }
    }
}

/// Field names of a `{ ... }` struct body.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut toks = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        match toks.next() {
            None => return Ok(fields),
            Some(TokenTree::Ident(i)) => {
                fields.push(i.to_string());
                match toks.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => return Err(format!("serde_derive: expected `:`, got {other:?}")),
                }
                skip_type_until_comma(&mut toks);
            }
            other => return Err(format!("serde_derive: expected field name, got {other:?}")),
        }
    }
}

/// Consumes type tokens up to (and including) the next comma at angle
/// depth zero. Brackets/parens arrive as whole groups, so only `<`/`>`
/// need explicit depth tracking.
fn skip_type_until_comma(toks: &mut Toks) {
    let mut angle_depth = 0i32;
    for tok in toks.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Number of fields in a tuple-struct/tuple-variant body: one per
/// top-level comma-separated segment that contains any tokens.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut toks = body.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attrs_and_vis(&mut toks);
        if toks.peek().is_none() {
            return count;
        }
        count += 1;
        skip_type_until_comma(&mut toks);
    }
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut toks = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        match toks.next() {
            None => return Ok(variants),
            Some(TokenTree::Ident(i)) => {
                let name = i.to_string();
                let kind = match toks.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let arity = count_tuple_fields(g.stream());
                        toks.next();
                        VariantKind::Tuple(arity)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream())?;
                        toks.next();
                        VariantKind::Named(fields)
                    }
                    _ => VariantKind::Unit,
                };
                // Discriminants (`= expr`) and the separating comma.
                skip_type_until_comma(&mut toks);
                variants.push(Variant { name, kind });
            }
            other => return Err(format!("serde_derive: expected variant, got {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct { fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Map(::std::vec::Vec::from([{}]))",
                entries.join(", ")
            )
        }
        Shape::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "::serde::Value::Seq(::std::vec::Vec::from([{}]))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("::serde::Value::Str(::std::string::String::from({name:?}))"),
        Shape::Enum { variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from({vname:?}))"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(__serde_f0) => tagged({vname:?}, \
                             ::serde::Serialize::to_value(__serde_f0))"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("__serde_f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => tagged({vname:?}, \
                                 ::serde::Value::Seq(::std::vec::Vec::from([{}])))",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => tagged({vname:?}, \
                                 ::serde::Value::Map(::std::vec::Vec::from([{}])))",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "fn tagged(tag: &str, payload: ::serde::Value) -> ::serde::Value {{\
                     ::serde::Value::Map(::std::vec::Vec::from([\
                         (::std::string::String::from(tag), payload)]))\
                 }}\
                 match self {{ {} }}",
                arms.join(", ")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct { fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(__serde_v.get({f:?})\
                         .ok_or_else(|| ::serde::Error::custom(\
                             concat!(\"missing field `\", {f:?}, \"` in {name}\")))?)?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(__serde_seq.get({i})\
                         .ok_or_else(|| ::serde::Error::custom(\
                             \"sequence too short for {name}\"))?)?"
                    )
                })
                .collect();
            format!(
                "let __serde_seq = __serde_v.as_seq().ok_or_else(|| \
                     ::serde::Error::custom(\"expected sequence for {name}\"))?;\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum { variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "{:?} => ::std::result::Result::Ok({name}::{})",
                        v.name, v.name
                    )
                })
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname})"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                                 ::serde::Deserialize::from_value(__serde_payload)?))"
                        ),
                        VariantKind::Tuple(arity) => {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(__serde_seq.get({i})\
                                         .ok_or_else(|| ::serde::Error::custom(\
                                             \"sequence too short for {name}::{vname}\"))?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "{vname:?} => {{\
                                     let __serde_seq = __serde_payload.as_seq()\
                                         .ok_or_else(|| ::serde::Error::custom(\
                                             \"expected sequence for {name}::{vname}\"))?;\
                                     ::std::result::Result::Ok({name}::{vname}({}))\
                                 }}",
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                             __serde_payload.get({f:?}).ok_or_else(|| \
                                             ::serde::Error::custom(concat!(\
                                                 \"missing field `\", {f:?}, \
                                                 \"` in {name}::{vname}\")))?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "{vname:?} => ::std::result::Result::Ok({name}::{vname} {{ {} }})",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            let str_arm = format!(
                "::serde::Value::Str(__serde_s) => match __serde_s.as_str() {{\
                     {}\
                     __serde_other => ::std::result::Result::Err(::serde::Error::custom(\
                         format!(\"unknown {name} variant `{{__serde_other}}`\"))),\
                 }}",
                if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(", "))
                }
            );
            let map_arm = format!(
                "::serde::Value::Map(__serde_entries) if __serde_entries.len() == 1 => {{\
                     let (__serde_tag, __serde_payload) = &__serde_entries[0];\
                     let _ = __serde_payload;\
                     match __serde_tag.as_str() {{\
                         {}\
                         __serde_other => ::std::result::Result::Err(::serde::Error::custom(\
                             format!(\"unknown {name} variant `{{__serde_other}}`\"))),\
                     }}\
                 }}",
                if payload_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", payload_arms.join(", "))
                }
            );
            format!(
                "match __serde_v {{\
                     {str_arm},\
                     {map_arm},\
                     _ => ::std::result::Result::Err(::serde::Error::custom(\
                         \"expected string or single-entry map for {name}\")),\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(__serde_v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{ \
                     let _ = &__serde_v; {body} }}\n\
         }}"
    )
}
