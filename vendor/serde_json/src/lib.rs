//! A vendored, dependency-free subset of `serde_json` over the serde
//! shim's [`Value`] data model: `to_string`, `to_string_pretty`,
//! `from_str`. Enough to write and replay experiment configs as real
//! JSON in the hermetic build environment.

pub use serde::{Error, Value};

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: serde::de::DeserializeOwned>(input: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&value)
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    let (nl, pad, pad_close) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * (depth + 1)),
            " ".repeat(w * depth),
        ),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::Num(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x:?}"));
            } else {
                // JSON has no Inf/NaN; mirror serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                render(item, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_word("null") => Ok(Value::Null),
            Some(b't') if self.eat_word("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_word("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::custom("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    entries.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::custom("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::custom(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    // ASCII fast path: one byte, one char, no UTF-8
                    // validation (revalidating the remaining input per
                    // character made large strings quadratic).
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 scalar (at most 4
                    // bytes); the input is a &str, so the sequence is
                    // valid — only its tail may be cut by the window.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let chunk = &self.bytes[self.pos..end];
                    let valid = match std::str::from_utf8(chunk) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&chunk[..e.valid_up_to()]).expect("validated")
                        }
                        Err(_) => return Err(Error::custom("invalid UTF-8")),
                    };
                    let c = valid.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::custom(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u32> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape() {
        let s = to_string(&"a\"b\\c\nd".to_string()).unwrap();
        assert_eq!(s, r#""a\"b\\c\nd""#);
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, "a\"b\\c\nd");
    }

    #[test]
    fn floats_and_large_ints_survive() {
        let x = 0x5EED_1991_u64;
        let back: u64 = from_str(&to_string(&x).unwrap()).unwrap();
        assert_eq!(back, x);
        let f = 1.25e-3f64;
        let back: f64 = from_str(&to_string(&f).unwrap()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn pretty_renders_indented() {
        let v = serde::Value::Map(vec![("a".into(), serde::Value::U64(1))]);
        struct Raw(serde::Value);
        impl serde::Serialize for Raw {
            fn to_value(&self) -> serde::Value {
                self.0.clone()
            }
        }
        let s = to_string_pretty(&Raw(v)).unwrap();
        assert_eq!(s, "{\n  \"a\": 1\n}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true x").is_err());
    }
}
