//! A vendored, dependency-free subset of the `rayon` API.
//!
//! The build environment is hermetic (no crates.io access), so this shim
//! provides the data-parallel surface the experiment layer uses:
//! `par_iter()` / `into_par_iter()` on slices, `Vec` and ranges, with
//! `map`, `for_each` and order-preserving `collect`.
//!
//! Execution model: the item list is materialized, split into contiguous
//! chunks (one per available core), and mapped on `std::thread::scope`
//! threads. Chunks are rejoined in input order, so `collect` yields
//! exactly the sequential result — parallel and serial runs of a
//! deterministic workload are byte-identical, which the experiment layer
//! relies on. There is no work stealing; uneven per-item cost degrades
//! utilization, not correctness.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::thread;

/// Everything a `use rayon::prelude::*;` caller needs.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap};
}

/// The number of worker threads parallel operations will use.
///
/// Honors `RAYON_NUM_THREADS` (like real rayon's default thread pool),
/// so CI can pin the count and assert that runs at 1, 2 and N threads
/// produce byte-identical output. Unset, empty, zero or unparsable
/// values fall back to the machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f` over `items` on scoped threads, returning results in input
/// order. The chunking is contiguous, so ordering is trivially stable.
fn execute<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if n <= 1 || threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items.into_iter();
    loop {
        let chunk: Vec<T> = items.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for handle in handles {
            out.extend(handle.join().expect("rayon shim worker panicked"));
        }
        out
    })
}

/// A materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` (lazily; runs at `collect`/`for_each`).
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Applies `f` to every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        execute(self.items, f);
    }

    /// Collects the items in order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A parallel iterator with a pending map stage.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Chains another map stage.
    pub fn map<R2, G>(self, g: G) -> ParMap<T, impl Fn(T) -> R2 + Sync>
    where
        R2: Send,
        G: Fn(R) -> R2 + Sync,
    {
        let f = self.f;
        ParMap {
            items: self.items,
            f: move |x| g(f(x)),
        }
    }

    /// Runs the pipeline in parallel and collects results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        execute(self.items, self.f).into_iter().collect()
    }

    /// Runs the pipeline in parallel for its side effects.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(R) + Sync,
    {
        let f = self.f;
        execute(self.items, move |x| g(f(x)));
    }
}

/// Conversion into a by-value parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Materializes the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T> IntoParallelIterator for ParIter<T>
where
    T: Send,
{
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter {
                    items: self.collect(),
                }
            }
        }
    )*};
}

impl_range_par_iter!(u32, u64, usize, i32, i64);

macro_rules! impl_range_inclusive_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::RangeInclusive<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter {
                    items: self.collect(),
                }
            }
        }
    )*};
}

impl_range_inclusive_par_iter!(u32, u64, usize, i32, i64);

/// Conversion into a by-reference parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'data> {
    /// The element type (a reference).
    type Item: Send + 'data;
    /// Materializes the parallel iterator over references.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        self.as_slice().par_iter()
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests exercise real threads; sleep is the contention source
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000u64).collect();
        let serial: Vec<u64> = xs.iter().map(|&x| x * x).collect();
        let parallel: Vec<u64> = xs.par_iter().map(|&x| x * x).collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn into_par_iter_on_ranges() {
        let out: Vec<usize> = (0..17usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out, (1..18).collect::<Vec<_>>());
    }

    #[test]
    fn chained_maps_compose() {
        let out: Vec<String> = vec![1u32, 2, 3]
            .into_par_iter()
            .map(|x| x * 10)
            .map(|x| x.to_string())
            .collect();
        assert_eq!(out, vec!["10", "20", "30"]);
    }

    #[test]
    fn for_each_runs_every_item() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = AtomicU64::new(0);
        (1..=100u64)
            .into_par_iter()
            .for_each(|x| {
                sum.fetch_add(x, Ordering::Relaxed);
            });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u32> = vec![7u32].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn uses_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        (0..64u32).into_par_iter().for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        let seen = ids.lock().unwrap().len();
        if super::current_num_threads() > 1 {
            assert!(seen > 1, "expected parallel execution, saw {seen} thread");
        }
    }

    #[test]
    fn thread_count_honors_rayon_num_threads() {
        // Only values > 1 here: tests in this binary run concurrently
        // and may read the count; anything > 1 keeps them on their
        // parallel path while this test briefly owns the variable.
        std::env::set_var("RAYON_NUM_THREADS", "3");
        assert_eq!(super::current_num_threads(), 3);
        std::env::set_var("RAYON_NUM_THREADS", "nonsense");
        assert!(super::current_num_threads() >= 1, "garbage must fall back");
        std::env::remove_var("RAYON_NUM_THREADS");
    }
}
