//! A vendored, dependency-free subset of the `rand` crate API.
//!
//! The build environment is hermetic (no crates.io access), so the
//! workspace ships the tiny slice of `rand` it actually uses:
//! [`RngCore`], [`SeedableRng`] and [`rngs::SmallRng`]. The generator is
//! xoshiro256++ seeded via SplitMix64 — the same family the real
//! `SmallRng` uses on 64-bit targets. Streams are deterministic per seed
//! (which is all the simulator requires); they are **not** guaranteed to
//! match the upstream crate's exact sequences.

/// Core random-number generation methods.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator whose whole state is derived from one `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Non-cryptographic generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
