//! A vendored, dependency-free subset of the `serde` API.
//!
//! The build environment is hermetic (no crates.io access), so this shim
//! provides the serde surface the workspace uses: the [`Serialize`] and
//! [`Deserialize`] traits, [`de::DeserializeOwned`], and the derive
//! macros re-exported from the sibling `serde_derive` shim.
//!
//! Instead of the real crate's visitor architecture, both traits run
//! through one self-describing data model, [`Value`] — a JSON-shaped
//! tree. Derived impls serialize structs to maps (field name → value),
//! tuple structs to sequences, and enums to `{"Variant": payload}` maps
//! (unit variants to plain strings), mirroring serde's default
//! "externally tagged" representation. `serde_json` in this workspace
//! renders/parses [`Value`] as real JSON, so configs round-trip.

pub use serde_derive::{Deserialize as Deserialize, Serialize as Serialize};

use std::collections::HashMap;
use std::fmt;

/// The self-describing data model all (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number (integers are represented exactly up to 2^53).
    Num(f64),
    /// A 64-bit unsigned integer kept exact (seeds, counters).
    U64(u64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (insertion order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The sequence payload, if this is a `Seq`.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The map payload, if this is a `Map`.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up a map key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The numeric payload as `f64` (accepting both number reprs).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            Value::U64(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(x) => Some(*x),
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as u64)
            }
            _ => None,
        }
    }
}

/// Error raised when a [`Value`] does not match the target type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from the [`Value`] data model.
///
/// The lifetime parameter exists for signature compatibility with the
/// real serde (`for<'de> Deserialize<'de>` bounds in user code); this
/// shim always deserializes from an owned tree.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Deserialization helper traits, mirroring `serde::de`.
pub mod de {
    pub use super::Error;

    /// A type deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T> DeserializeOwned for T where T: for<'de> super::Deserialize<'de> {}
}

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(f64::from(*self))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_f64()
                    .map(|x| x as $t)
                    .ok_or_else(|| Error::custom(concat!("expected number for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if (*self as i128) >= 0 {
                    Value::U64(*self as u64)
                } else {
                    Value::Num(*self as f64)
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                if let Some(u) = value.as_u64() {
                    return Ok(u as $t);
                }
                value
                    .as_f64()
                    .map(|x| x as $t)
                    .ok_or_else(|| Error::custom(concat!("expected integer for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let seq = value
            .as_seq()
            .ok_or_else(|| Error::custom("expected 2-tuple sequence"))?;
        if seq.len() != 2 {
            return Err(Error::custom("expected exactly 2 elements"));
        }
        Ok((A::from_value(&seq[0])?, B::from_value(&seq[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = match k.to_value() {
                    Value::Str(s) => s,
                    other => format!("{other:?}"),
                };
                (key, v.to_value())
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<'de, V: Deserialize<'de>, S: Default + std::hash::BuildHasher> Deserialize<'de>
    for HashMap<String, V, S>
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        let mut out = HashMap::default();
        for (k, v) in value.as_map().ok_or_else(|| Error::custom("expected map"))? {
            out.insert(k.clone(), V::from_value(v)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let exact = u64::MAX - 1;
        assert_eq!(u64::from_value(&exact.to_value()).unwrap(), exact);
    }

    #[test]
    fn collections_round_trip() {
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()).unwrap(), xs);
        let opt: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&opt.to_value()).unwrap(), None);
        let pair = (3u32, 4.5f64);
        assert_eq!(<(u32, f64)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn map_lookup() {
        let v = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("b"), None);
    }
}
