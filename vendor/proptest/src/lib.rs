//! A vendored, dependency-free subset of the `proptest` API.
//!
//! The build environment is hermetic (no crates.io access), so this shim
//! reimplements the slice of proptest the workspace's property tests
//! use: the [`proptest!`] macro, [`Strategy`] with `prop_map`, range /
//! tuple / `Just` / `any` / `prop::collection::vec` / [`prop_oneof!`]
//! strategies, and [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the case index; the
//!   run is reproducible because each test's RNG is seeded from the
//!   test's module path and name.
//! * `prop_assert!`/`prop_assert_eq!` are plain `assert!`/`assert_eq!`.
//! * Default case count is 64 (real proptest: 256) to keep the suite
//!   fast; `ProptestConfig::with_cases` overrides it per block.

use std::marker::PhantomData;
use std::ops::Range;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic test RNG (xoshiro256++ seeded by SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds deterministically from a test's fully qualified name.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0x9E37_79B9_7F4A_7C15u64;
        for &b in name.as_bytes() {
            h = Self::splitmix(h ^ u64::from(b));
        }
        Self::from_seed(h)
    }

    /// Seeds from a raw value.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            Self::splitmix(sm)
        };
        let s = [next(), next(), next(), next()];
        TestRng { s }
    }

    fn splitmix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform draw in `[0, 1)`.
    pub fn uniform01(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        // Widening-multiply rejection sampling.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<R, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> R,
    {
        Map { strategy: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen(&self, rng: &mut TestRng) -> S::Value {
        (**self).gen(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn gen(&self, rng: &mut TestRng) -> S::Value {
        (**self).gen(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, R, F: Fn(S::Value) -> R> Strategy for Map<S, F> {
    type Value = R;
    fn gen(&self, rng: &mut TestRng) -> R {
        (self.f)(self.strategy.gen(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.uniform01() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = (rng.uniform01() * 600.0 - 300.0).exp2();
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

/// The result of [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// A boxed sampling closure, the common denominator for heterogeneous
/// [`prop_oneof!`] arms.
pub type BoxedSampler<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Erases a strategy into a [`BoxedSampler`].
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedSampler<S::Value> {
    Box::new(move |rng| s.gen(rng))
}

/// A weighted union of strategies (the engine of [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<(u32, BoxedSampler<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedSampler<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn gen(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, sampler) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return sampler(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

/// Collection strategies, addressed as `prop::collection::*`.
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + if span == 0 { 0 } else { rng.below(span) as usize };
            (0..n).map(|_| self.element.gen(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Namespace mirror so `prop::collection::vec` resolves as in the real
/// crate.
pub mod prop {
    pub use super::collection;
}

/// What `use proptest::prelude::*;` brings into scope.
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `fn name(pat in strategy,
/// ...) { body }` items carrying outer attributes (incl. `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strategy:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let ($($pat,)*) = (
                        $($crate::Strategy::gen(&($strategy), &mut rng),)*
                    );
                    let _ = case;
                    $body
                }
            }
        )*
    };
}

/// Asserts a property holds (plain `assert!` in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts two values are equal (plain `assert_eq!` in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Picks among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::boxed($strategy))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = super::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let x = (3u32..17).gen(&mut rng);
            assert!((3..17).contains(&x));
            let y = (-5.0f64..5.0).gen(&mut rng);
            assert!((-5.0..5.0).contains(&y));
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let mut rng = super::TestRng::from_name("union");
        let s = prop_oneof![9 => Just(1u32), 1 => Just(2u32)];
        let ones = (0..1000).filter(|_| s.gen(&mut rng) == 1).count();
        assert!(ones > 800, "weighted pick broken: {ones}/1000");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_in_range(xs in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_map_compose(
            (a, b) in (0u32..10, 0u32..10),
            s in (0u64..100).prop_map(|x| x.to_string()),
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(s.parse::<u64>().unwrap() < 100, true);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = super::TestRng::from_name("x");
        let mut b = super::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
